//! A sharded, latch-guarded buffer pool for concurrent query serving.
//!
//! [`BufferPool`](crate::BufferPool) models System R's frame cache as a
//! single-owner structure; this module wraps the same LRU semantics in N
//! independently latched partitions so many sessions can read pages
//! concurrently. A page's shard is a pure function of its [`PageKey`]:
//! sequential pages of one file stripe round-robin across shards, so a
//! scan that fits in the pool stays resident just as it would under one
//! global LRU.
//!
//! # Latch order
//!
//! Three latch ranks exist, and acquisition must follow the total order
//! *shard (rank 0) → write-back gate (rank 1) → backend (rank 2)*:
//!
//! - **Shard latches (rank 0).** At most one shard latch is held at a
//!   time. Cross-shard walks (flush, clear, stats) visit shards in
//!   strictly ascending shard id, releasing each before locking the
//!   next, so any future multi-latch extension stays deadlock-free.
//! - **Write-back gate (rank 1).** A counter of dirty eviction victims
//!   whose backend write is still in flight. A dirty victim is
//!   *registered* with the gate while its shard latch is still held —
//!   so at every instant a dirty image is either resident in a shard or
//!   counted in the gate — and deregistered once its backend write
//!   completes. [`ShardedBufferPool::flush`] drains the gate after its
//!   shard sweep: when `flush` returns, every page that was dirty when
//!   it was called has reached the backend, which is what makes `&self`
//!   `sync`/`save_to` sound against concurrent readers. The gate latch
//!   is held only for counter arithmetic, never across I/O (the drain
//!   wait releases it).
//! - **Backend latch (rank 2).** The page-file backend is the maximum of
//!   the order. Per the RSS discipline *latches never span I/O*, no
//!   shard or gate latch is held while the backend latch is taken: a
//!   miss releases the shard, performs the read under the backend latch
//!   alone, then relocks the shard to install the frame. Dirty eviction
//!   victims are removed under the shard latch and written back after it
//!   is released (gated as above).
//!
//! `sysr-audit`'s `latch-discipline` rule enforces the I/O-span half of
//! this contract and `latch-ordering` enforces the rank order.
//!
//! # Benign staleness
//!
//! Dirty frames only arise from `&mut Storage` writers, which the borrow
//! checker already serializes against shared readers. While a dirty
//! victim's write-back is in flight, a concurrent reader of the *same*
//! page may re-read the backend's prior image; that image is always a
//! complete, checksum-valid stamped page, and tuple data is served from
//! the in-memory segments and B-trees — frame bytes feed only checksum
//! verification and persistence. Persistence itself is *not* allowed the
//! staleness: `flush` drains the write-back gate, so `sync`/`save_to`
//! never observe the prior image of a page that was dirty when they
//! began. Counters are relaxed
//! atomics: exact in any single-threaded window (the accounting identity
//! `page_fetches == backend_reads` that the tests pin), monotonically
//! consistent across threads.

use crate::buffer::{FileId, IoStats, PageKey};
use crate::error::{RssError, RssResult};
use crate::page::PAGE_SIZE;
use crate::pagefile::{verify_page, PageBackend};
use crate::sync::{model, AtomicU64, Condvar, Mutex};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::Ordering::Relaxed;

/// The page-file backend behind its rank-1 latch. `Send` because frames
/// migrate across session threads.
pub type SharedBackend = Mutex<Box<dyn PageBackend + Send>>;

/// Pages per shard below which we stop splitting: tiny pools keep a
/// single shard and behave exactly like the global-LRU [`BufferPool`]
/// (crate::BufferPool), which the buffer-sweep experiments rely on.
const MIN_SHARD_PAGES: usize = 8;

/// Latch-partition count ceiling; 8 matches the widest thread fan-out
/// the stress suite and throughput benchmark drive.
const MAX_SHARDS: usize = 8;

fn shard_count_for(capacity: usize) -> usize {
    (capacity / MIN_SHARD_PAGES).clamp(1, MAX_SHARDS)
}

/// Shared I/O counters. Relaxed is sufficient: each field is an
/// independent monotonic tally, and windows are only compared within one
/// thread (explain-analyze) or after joining all threads (tests, bench).
#[derive(Debug, Default)]
struct Counters {
    data_page_fetches: AtomicU64,
    index_page_fetches: AtomicU64,
    temp_page_fetches: AtomicU64,
    temp_pages_written: AtomicU64,
    buffer_hits: AtomicU64,
    rsi_calls: AtomicU64,
    backend_reads: AtomicU64,
    backend_writes: AtomicU64,
    temp_lists_created: AtomicU64,
    temp_lists_destroyed: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> IoStats {
        IoStats {
            data_page_fetches: self.data_page_fetches.load(Relaxed),
            index_page_fetches: self.index_page_fetches.load(Relaxed),
            temp_page_fetches: self.temp_page_fetches.load(Relaxed),
            temp_pages_written: self.temp_pages_written.load(Relaxed),
            buffer_hits: self.buffer_hits.load(Relaxed),
            rsi_calls: self.rsi_calls.load(Relaxed),
            backend_reads: self.backend_reads.load(Relaxed),
            backend_writes: self.backend_writes.load(Relaxed),
            temp_lists_created: self.temp_lists_created.load(Relaxed),
            temp_lists_destroyed: self.temp_lists_destroyed.load(Relaxed),
        }
    }

    fn reset(&self) {
        self.data_page_fetches.store(0, Relaxed);
        self.index_page_fetches.store(0, Relaxed);
        self.temp_page_fetches.store(0, Relaxed);
        self.temp_pages_written.store(0, Relaxed);
        self.buffer_hits.store(0, Relaxed);
        self.rsi_calls.store(0, Relaxed);
        self.backend_reads.store(0, Relaxed);
        self.backend_writes.store(0, Relaxed);
        self.temp_lists_created.store(0, Relaxed);
        self.temp_lists_destroyed.store(0, Relaxed);
    }
}

/// One resident page. Unlike `BufferPool`'s counting-only frames, every
/// sharded frame owns its image: the concurrent pool has no backend-less
/// modeling path.
#[derive(Debug)]
struct ShardFrame {
    stamp: u64,
    dirty: bool,
    buf: Box<[u8; PAGE_SIZE]>,
}

/// One latch partition: an LRU frame map identical in shape to the
/// single-owner pool's. Stamps come from the pool-wide clock, so recency
/// is comparable across shards (resize rehashes preserve true LRU
/// order).
#[derive(Debug)]
struct Shard {
    capacity: usize,
    frames: HashMap<PageKey, ShardFrame>,
    lru: BTreeMap<u64, PageKey>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard { capacity, frames: HashMap::new(), lru: BTreeMap::new() }
    }

    /// Move `key` to most-recently-used; `None` if not resident.
    fn bump(&mut self, key: PageKey, stamp: u64) -> Option<&mut ShardFrame> {
        let frame = self.frames.get_mut(&key)?;
        self.lru.remove(&frame.stamp);
        frame.stamp = stamp;
        self.lru.insert(stamp, key);
        Some(frame)
    }

    /// Install a frame, returning the LRU victim if the shard is now over
    /// capacity. The caller writes dirty victims back *after* releasing
    /// this shard's latch.
    fn install(&mut self, key: PageKey, frame: ShardFrame) -> Option<(PageKey, ShardFrame)> {
        if let Some(old) = self.frames.remove(&key) {
            self.lru.remove(&old.stamp);
        }
        self.lru.insert(frame.stamp, key);
        self.frames.insert(key, frame);
        if self.frames.len() > self.capacity {
            self.pop_lru()
        } else {
            None
        }
    }

    /// Remove and return the least-recently-used frame. The two maps are
    /// mutated together under one latch, so they cannot disagree.
    fn pop_lru(&mut self) -> Option<(PageKey, ShardFrame)> {
        let (&stamp, &victim) = self.lru.iter().next()?;
        self.lru.remove(&stamp);
        let frame = self.frames.remove(&victim);
        debug_assert!(frame.is_some(), "LRU map names non-resident page {victim:?}");
        frame.map(|f| (victim, f))
    }
}

/// The concurrent frame cache: N latch-guarded LRU partitions over one
/// latched page backend, with lock-free counter accounting.
#[derive(Debug)]
pub struct ShardedBufferPool {
    shards: Vec<Mutex<Shard>>,
    clock: AtomicU64,
    counters: Counters,
    capacity: usize,
    /// Rank-1 write-back gate: dirty eviction victims still in flight to
    /// the backend. See the module docs for the protocol.
    gate: Mutex<usize>,
    /// Signalled whenever the gate count returns to zero.
    gate_drained: Condvar,
}

impl ShardedBufferPool {
    /// A pool holding `capacity` pages split across
    /// `min(max(capacity / 8, 1), 8)` shards. Each shard holds
    /// `ceil(capacity / shards)` pages so a single-file scan that fits
    /// the pool stays fully resident despite striping — see
    /// [`ShardedBufferPool::capacity`] for the over-admission this
    /// rounding implies.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one page");
        let n = shard_count_for(capacity);
        let per_shard = capacity.div_ceil(n);
        ShardedBufferPool {
            shards: (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect(),
            clock: AtomicU64::new(0),
            counters: Counters::default(),
            capacity,
            gate: Mutex::new(0),
            gate_drained: Condvar::new(),
        }
    }

    /// The configured capacity. Because each of the `n` shards holds
    /// `ceil(capacity / n)` pages (the rounding that keeps a
    /// pool-fitting scan fully resident), actual residency may exceed
    /// this by up to `n - 1` pages when `capacity` is not a multiple of
    /// the shard count — e.g. 17 pages configured admits up to 18.
    /// Buffer-sweep experiments comparing against the single-owner
    /// `BufferPool` should use multiples of the shard-count ceiling
    /// (`MAX_SHARDS`, 8 — all the committed sweeps do) or single-shard
    /// sizes, where the two pools admit identically.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Register one dirty eviction victim with the write-back gate.
    /// Called with the victim's shard latch still held, so no window
    /// exists where the dirty image is neither resident nor gated.
    fn gate_register(&self) {
        let mut inflight = self.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *inflight += 1;
    }

    /// Deregister one victim after its backend write finished (or
    /// failed — the caller surfaces the error; the gate only tracks
    /// in-flight work).
    fn gate_release(&self) {
        let mut inflight = self.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *inflight = inflight.saturating_sub(1);
        if *inflight == 0 {
            self.gate_drained.notify_all();
        }
    }

    /// Block until no dirty-victim write-back is in flight. The condvar
    /// wait releases the gate latch, so writers are never blocked by a
    /// drainer.
    fn gate_drain(&self) {
        let mut inflight = self.gate.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while *inflight > 0 {
            inflight =
                self.gate_drained.wait(inflight).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Relaxed) + 1
    }

    /// The latch slot for `key`'s shard. Striping adds the page number
    /// *after* mixing the file id, so consecutive pages of one file land
    /// on consecutive shards.
    fn shard_slot(&self, key: PageKey) -> RssResult<&Mutex<Shard>> {
        let (variant, id) = match key.file {
            FileId::Segment(i) => (0u64, i),
            FileId::Index(i) => (1, i),
            FileId::Temp(i) => (2, i),
        };
        let base = variant.wrapping_mul(0x9E37_79B9) ^ u64::from(id).wrapping_mul(0x85EB_CA6B);
        let s = (base.wrapping_add(u64::from(key.page)) % self.shards.len() as u64) as usize;
        self.shards.get(s).ok_or_else(|| RssError::Corrupt(format!("shard {s} out of range")))
    }

    fn count_fetch(&self, key: PageKey) {
        match key.file {
            FileId::Segment(_) => self.counters.data_page_fetches.fetch_add(1, Relaxed),
            FileId::Index(_) => self.counters.index_page_fetches.fetch_add(1, Relaxed),
            FileId::Temp(_) => self.counters.temp_page_fetches.fetch_add(1, Relaxed),
        };
    }

    /// Access a page; a miss reads and verifies its image from the page
    /// backend (one physical read) and counts a page fetch. Returns
    /// `true` on a miss.
    pub fn read(&self, key: PageKey, backend: &SharedBackend) -> RssResult<bool> {
        let slot = self.shard_slot(key)?;
        {
            let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if shard.bump(key, self.tick()).is_some() {
                self.counters.buffer_hits.fetch_add(1, Relaxed);
                return Ok(false);
            }
        }
        // Miss: the read happens under the backend latch alone.
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        {
            let mut backend = backend.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            backend.read_page(key, &mut buf)?;
        }
        verify_page(&buf, key)?;
        self.counters.backend_reads.fetch_add(1, Relaxed);
        self.count_fetch(key);
        // Relock to install. A racing reader may have installed the same
        // page meanwhile; both performed a real read and the counters say
        // so — the overwrite is an identical clean image.
        //
        // `dirty-victim-gate` is the model checker's mutant switch: it
        // re-introduces the pre-cd3b895 ordering (register only after the
        // shard latch drops, deregister before the write) so
        // `sysr-audit --model --mutant dirty-victim-gate` can prove the
        // explorer finds the lost-dirty-image schedule. It reads as
        // `false` on every thread outside the model harness.
        let mutant = model::fault("dirty-victim-gate");
        let victim = {
            let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let frame = ShardFrame { stamp: self.tick(), dirty: false, buf };
            let victim = shard.install(key, frame);
            // Register a dirty victim with the write-back gate *before*
            // releasing the shard latch: a concurrent flush that misses
            // the removed frame is guaranteed to see the gate count and
            // wait for the image to reach the backend.
            if victim.as_ref().is_some_and(|(_, f)| f.dirty) && !mutant {
                self.gate_register();
            }
            victim
        };
        if let Some((vkey, vframe)) = victim {
            if vframe.dirty {
                if mutant {
                    // The PR-6 bug, verbatim in gate terms: the dirty
                    // image is neither resident nor gated while its
                    // write is in flight.
                    self.gate_register();
                    self.gate_release();
                }
                let written = {
                    let mut backend =
                        backend.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    backend.write_page(vkey, &vframe.buf)
                };
                // Deregister before surfacing an error so a failed write
                // can never wedge a draining flush.
                if !mutant {
                    self.gate_release();
                }
                written?;
                self.counters.backend_writes.fetch_add(1, Relaxed);
            }
        }
        Ok(true)
    }

    /// Write one page image through the pool: in place if resident
    /// (dirty, deferred write-back), write-around to the backend
    /// otherwise. Writes never establish residency.
    pub fn write_through(
        &self,
        key: PageKey,
        bytes: &[u8; PAGE_SIZE],
        backend: &SharedBackend,
    ) -> RssResult<()> {
        let slot = self.shard_slot(key)?;
        {
            let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(frame) = shard.bump(key, self.tick()) {
                *frame.buf = *bytes;
                frame.dirty = true;
                return Ok(());
            }
        }
        {
            let mut backend = backend.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            backend.write_page(key, bytes)?;
        }
        self.counters.backend_writes.fetch_add(1, Relaxed);
        Ok(())
    }

    /// Write every dirty frame back, in key order within each shard,
    /// visiting shards in ascending id. Frames stay resident. The dirty
    /// bit is cleared only after its image reaches the backend, so an
    /// I/O error leaves the remaining pages still marked.
    ///
    /// After the shard sweep the write-back gate is drained, so when
    /// this returns every page that was dirty at the time of the call —
    /// resident *or* mid-eviction in a concurrent reader — has reached
    /// the backend. `Storage::sync` and `Storage::save_to` rely on this
    /// to be sound from `&self` against concurrent readers.
    pub fn flush(&self, backend: &SharedBackend) -> RssResult<()> {
        for slot in &self.shards {
            let dirty: Vec<(PageKey, Box<[u8; PAGE_SIZE]>)> = {
                let shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let mut v: Vec<_> = shard
                    .frames
                    .iter()
                    .filter(|(_, f)| f.dirty)
                    .map(|(k, f)| (*k, f.buf.clone()))
                    .collect();
                v.sort_by_key(|(k, _)| *k);
                v
            };
            for (key, buf) in dirty {
                {
                    let mut backend =
                        backend.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    backend.write_page(key, &buf)?;
                }
                self.counters.backend_writes.fetch_add(1, Relaxed);
                let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if let Some(f) = shard.frames.get_mut(&key) {
                    f.dirty = false;
                }
            }
        }
        self.gate_drain();
        Ok(())
    }

    /// Evict everything without write-back (stats are kept). Callers
    /// that may hold dirty frames must [`ShardedBufferPool::flush`]
    /// first.
    pub fn clear(&self) {
        for slot in &self.shards {
            let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            shard.frames.clear();
            shard.lru.clear();
        }
    }

    /// Drop every resident page of `file` (temp-list teardown, index
    /// rebuilds).
    pub fn invalidate_file(&self, file: FileId) {
        for slot in &self.shards {
            let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let stale: Vec<PageKey> =
                shard.frames.keys().filter(|k| k.file == file).copied().collect();
            for key in stale {
                if let Some(f) = shard.frames.remove(&key) {
                    shard.lru.remove(&f.stamp);
                }
            }
        }
    }

    /// Number of pages currently resident across all shards.
    pub fn resident_pages(&self) -> usize {
        self.shards
            .iter()
            .map(|slot| slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner).frames.len())
            .sum()
    }

    /// Change capacity, re-partitioning if the shard count changes.
    /// Growing keeps every resident page; shrinking evicts in global LRU
    /// order, writing dirty victims back through `backend`. Requires
    /// exclusive access — capacity is a `&mut Database` configuration
    /// action, never a serving-path one.
    pub fn resize(&mut self, capacity: usize, backend: &SharedBackend) -> RssResult<()> {
        assert!(capacity > 0, "buffer pool needs at least one page");
        let n = shard_count_for(capacity);
        let per_shard = capacity.div_ceil(n);
        // Collect every frame; ascending stamp order preserves true LRU
        // recency across the re-partition (the clock is pool-wide).
        let mut all: Vec<(PageKey, ShardFrame)> = Vec::new();
        for slot in &mut self.shards {
            let shard = slot.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
            all.extend(shard.frames.drain());
            shard.lru.clear();
        }
        all.sort_by_key(|(_, f)| f.stamp);
        self.shards = (0..n).map(|_| Mutex::new(Shard::new(per_shard))).collect();
        self.capacity = capacity;
        for (key, frame) in all {
            let victim = {
                let slot = self.shard_slot(key)?;
                let mut shard = slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                shard.install(key, frame)
            };
            if let Some((vkey, vframe)) = victim {
                if vframe.dirty {
                    {
                        let mut backend =
                            backend.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        backend.write_page(vkey, &vframe.buf)?;
                    }
                    self.counters.backend_writes.fetch_add(1, Relaxed);
                }
            }
        }
        Ok(())
    }

    /// Record one tuple crossing the RSI (lock-free: the executor's hot
    /// path).
    pub fn record_rsi_call(&self) {
        self.counters.rsi_calls.fetch_add(1, Relaxed);
    }

    /// Record `n` tuples crossing the RSI in one batched NEXT: a single
    /// atomic add with the same total as `n` individual calls.
    pub fn record_rsi_calls(&self, n: u64) {
        self.counters.rsi_calls.fetch_add(n, Relaxed);
    }

    /// Record `pages` temporary pages written.
    pub fn record_temp_write(&self, pages: u64) {
        self.counters.temp_pages_written.fetch_add(pages, Relaxed);
    }

    /// Record a temporary list coming into existence.
    pub fn record_temp_list_created(&self) {
        self.counters.temp_lists_created.fetch_add(1, Relaxed);
    }

    /// Record a temporary list being destroyed.
    pub fn record_temp_list_destroyed(&self) {
        self.counters.temp_lists_destroyed.fetch_add(1, Relaxed);
    }

    pub fn stats(&self) -> IoStats {
        self.counters.snapshot()
    }

    pub fn reset_stats(&self) {
        self.counters.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pagefile::{stamp_page, MemBackend};

    fn file(i: u32) -> FileId {
        FileId::Segment(i)
    }

    /// A backend pre-loaded with `pages` stamped pages of `file(0)`.
    fn backend_with(pages: u32) -> SharedBackend {
        let mut b = MemBackend::new();
        for p in 0..pages {
            let mut img = [0u8; PAGE_SIZE];
            img[PAGE_SIZE - 1] = p as u8;
            stamp_page(&mut img, p + 1);
            b.write_page(PageKey::new(file(0), p), &img).unwrap();
        }
        Mutex::new(Box::new(b) as Box<dyn PageBackend + Send>)
    }

    #[test]
    fn shard_count_scales_and_clamps() {
        assert_eq!(ShardedBufferPool::new(4).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(8).shard_count(), 1);
        assert_eq!(ShardedBufferPool::new(16).shard_count(), 2);
        assert_eq!(ShardedBufferPool::new(64).shard_count(), 8);
        assert_eq!(ShardedBufferPool::new(1024).shard_count(), 8);
    }

    #[test]
    fn miss_then_hit_accounting() {
        let backend = backend_with(4);
        let pool = ShardedBufferPool::new(8);
        let key = PageKey::new(file(0), 0);
        assert!(pool.read(key, &backend).unwrap(), "first access misses");
        assert!(!pool.read(key, &backend).unwrap(), "second access hits");
        let s = pool.stats();
        assert_eq!(s.data_page_fetches, 1);
        assert_eq!(s.backend_reads, 1);
        assert_eq!(s.buffer_hits, 1);
        assert_eq!(s.page_fetches(), s.backend_reads, "accounting identity");
    }

    #[test]
    fn sequential_scan_fitting_the_pool_stays_resident() {
        let backend = backend_with(16);
        let pool = ShardedBufferPool::new(16);
        assert_eq!(pool.shard_count(), 2);
        for p in 0..16 {
            pool.read(PageKey::new(file(0), p), &backend).unwrap();
        }
        // Second pass: all hits — striping must not evict a fitting scan.
        for p in 0..16 {
            assert!(!pool.read(PageKey::new(file(0), p), &backend).unwrap());
        }
        assert_eq!(pool.stats().buffer_hits, 16);
        assert_eq!(pool.resident_pages(), 16);
    }

    #[test]
    fn dirty_eviction_writes_back_and_rereads() {
        let backend = backend_with(3);
        let pool = ShardedBufferPool::new(2);
        let k0 = PageKey::new(file(0), 0);
        pool.read(k0, &backend).unwrap();
        let mut img = [0u8; PAGE_SIZE];
        img[PAGE_SIZE - 1] = 0xAB;
        stamp_page(&mut img, 99);
        pool.write_through(k0, &img, &backend).unwrap();
        assert_eq!(pool.stats().backend_writes, 0, "resident write defers");
        // Force k0 out (capacity 2, single shard at this size).
        pool.read(PageKey::new(file(0), 1), &backend).unwrap();
        pool.read(PageKey::new(file(0), 2), &backend).unwrap();
        assert_eq!(pool.stats().backend_writes, 1, "dirty victim written back");
        // The written-back image is what a re-read now returns.
        pool.read(k0, &backend).unwrap();
        let slot = pool.shard_slot(k0).unwrap();
        let shard = slot.lock().unwrap();
        assert_eq!(shard.frames.get(&k0).unwrap().buf[PAGE_SIZE - 1], 0xAB);
    }

    #[test]
    fn write_around_when_not_resident() {
        let backend = backend_with(1);
        let pool = ShardedBufferPool::new(4);
        let mut img = [0u8; PAGE_SIZE];
        stamp_page(&mut img, 7);
        pool.write_through(PageKey::new(file(0), 0), &img, &backend).unwrap();
        assert_eq!(pool.stats().backend_writes, 1, "write-around goes straight down");
        assert_eq!(pool.resident_pages(), 0, "writes never establish residency");
    }

    #[test]
    fn flush_clears_dirty_and_keeps_frames() {
        let backend = backend_with(4);
        let pool = ShardedBufferPool::new(8);
        for p in 0..4 {
            pool.read(PageKey::new(file(0), p), &backend).unwrap();
            let mut img = [0u8; PAGE_SIZE];
            stamp_page(&mut img, 50 + p);
            pool.write_through(PageKey::new(file(0), p), &img, &backend).unwrap();
        }
        pool.flush(&backend).unwrap();
        assert_eq!(pool.stats().backend_writes, 4);
        assert_eq!(pool.resident_pages(), 4, "flush keeps frames resident");
        pool.flush(&backend).unwrap();
        assert_eq!(pool.stats().backend_writes, 4, "second flush finds nothing dirty");
    }

    #[test]
    fn resize_preserves_recency_across_repartition() {
        let backend = backend_with(16);
        let mut pool = ShardedBufferPool::new(16);
        for p in 0..16 {
            pool.read(PageKey::new(file(0), p), &backend).unwrap();
        }
        // Touch page 0 so it is most recent, then shrink to 8 pages
        // (1 shard): the 8 survivors must be the 8 most recent.
        pool.read(PageKey::new(file(0), 0), &backend).unwrap();
        pool.resize(8, &backend).unwrap();
        assert_eq!(pool.shard_count(), 1);
        assert_eq!(pool.resident_pages(), 8);
        assert!(!pool.read(PageKey::new(file(0), 0), &backend).unwrap(), "MRU page survived");
        assert!(pool.read(PageKey::new(file(0), 1), &backend).unwrap(), "LRU page was evicted");
    }

    #[test]
    fn invalidate_file_drops_only_that_file() {
        let backend = backend_with(4);
        let pool = ShardedBufferPool::new(8);
        pool.read(PageKey::new(file(0), 0), &backend).unwrap();
        pool.record_temp_write(1);
        pool.invalidate_file(FileId::Temp(0));
        assert_eq!(pool.resident_pages(), 1);
        pool.invalidate_file(file(0));
        assert_eq!(pool.resident_pages(), 0);
    }

    /// The dirty-victim/flush race: a reader evicting a dirty frame
    /// removes it from its shard and writes it back only after the
    /// latch drops. `flush` must not return in that window believing
    /// everything clean — the write-back gate makes it wait. Each round
    /// dirties the whole pool, races evicting readers against a flush,
    /// and checks the backend holds every dirtied image the moment
    /// `flush` returns.
    #[test]
    fn flush_waits_for_inflight_dirty_victim_writebacks() {
        const PAGES: u32 = 32;
        const DIRTY: u32 = 8; // == pool capacity, single shard
        let backend = backend_with(PAGES);
        let pool = ShardedBufferPool::new(DIRTY as usize);
        for round in 0u32..20 {
            let marker = 0x40 + (round % 64) as u8;
            for p in 0..DIRTY {
                let key = PageKey::new(file(0), p);
                pool.read(key, &backend).unwrap();
                let mut img = [0u8; PAGE_SIZE];
                img[PAGE_SIZE - 1] = marker;
                stamp_page(&mut img, 1000 + u32::from(marker));
                pool.write_through(key, &img, &backend).unwrap();
            }
            std::thread::scope(|scope| {
                for t in 0..3u32 {
                    let pool = &pool;
                    let backend = &backend;
                    scope.spawn(move || {
                        // Misses on pages ≥ DIRTY evict the dirty frames.
                        for p in DIRTY..PAGES {
                            let page = DIRTY + (p - DIRTY + t) % (PAGES - DIRTY);
                            pool.read(PageKey::new(file(0), page), backend).unwrap();
                        }
                    });
                }
                pool.flush(&backend).unwrap();
                // flush returned: every image dirtied before it was
                // called must already be in the backend, evicted or not.
                let mut buf = Box::new([0u8; PAGE_SIZE]);
                let mut b = backend.lock().unwrap();
                for p in 0..DIRTY {
                    b.read_page(PageKey::new(file(0), p), &mut buf).unwrap();
                    assert_eq!(
                        buf[PAGE_SIZE - 1],
                        marker,
                        "round {round}: page {p} image missing from backend after flush"
                    );
                }
            });
        }
    }

    #[test]
    fn concurrent_readers_account_exactly() {
        const THREADS: u64 = 8;
        const PAGES: u32 = 32;
        const ROUNDS: u32 = 20;
        let backend = backend_with(PAGES);
        let pool = ShardedBufferPool::new(16); // smaller than the working set
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let pool = &pool;
                let backend = &backend;
                scope.spawn(move || {
                    for r in 0..ROUNDS {
                        for p in 0..PAGES {
                            let page = (p + r + t as u32) % PAGES;
                            pool.read(PageKey::new(file(0), page), backend).unwrap();
                        }
                    }
                });
            }
        });
        let s = pool.stats();
        let accesses = THREADS * u64::from(PAGES) * u64::from(ROUNDS);
        assert_eq!(s.buffer_hits + s.data_page_fetches, accesses, "every access counted once");
        assert_eq!(s.backend_reads, s.data_page_fetches, "every miss is one physical read");
        assert!(pool.resident_pages() <= 16, "capacity respected under concurrency");
    }
}
