//! Byte-level encoding of tuples for page storage.
//!
//! Tuples are stored on pages as flat byte strings:
//!
//! ```text
//! u16 column-count
//! per column: u8 tag, then payload
//!   tag 0 = NULL               (no payload)
//!   tag 1 = Int                (8 bytes LE)
//!   tag 2 = Float              (8 bytes LE, f64 bits)
//!   tag 3 = Str                (u16 LE length + UTF-8 bytes)
//! ```
//!
//! The format is deliberately simple — the paper's cost model cares about
//! how many *pages* tuples occupy, not about encoding cleverness — but it is
//! a real serialization boundary: every tuple that crosses the RSI has been
//! decoded from page bytes.

use crate::error::{RssError, RssResult};
use crate::tuple::Tuple;
use crate::value::Value;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encode one value (tag + payload) into `out`, appending.
pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let len = s.len() as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one value from a cursor positioned at its tag byte.
pub(crate) fn decode_value(cursor: &mut Cursor<'_>) -> RssResult<Value> {
    let tag = cursor.u8()?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(i64::from_le_bytes(cursor.array::<8>()?)),
        TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(cursor.array::<8>()?))),
        TAG_STR => {
            let len = cursor.u16()? as usize;
            let raw = cursor.slice(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| RssError::Corrupt("invalid utf-8 in string column".into()))?;
            Value::Str(s.to_string())
        }
        t => return Err(RssError::Corrupt(format!("unknown value tag {t}"))),
    })
}

/// Encode a key (u16 column count + values) into `out`. This is the same
/// layout as a tuple, reused for B-tree node keys.
pub(crate) fn encode_key(key: &[Value], out: &mut Vec<u8>) {
    let ncols = key.len() as u16;
    out.extend_from_slice(&ncols.to_le_bytes());
    for v in key {
        encode_value(v, out);
    }
}

/// Decode a key written by [`encode_key`] from a cursor.
pub(crate) fn decode_key(cursor: &mut Cursor<'_>) -> RssResult<Vec<Value>> {
    let ncols = cursor.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(cursor)?);
    }
    Ok(values)
}

/// Encode a tuple into `out`, appending.
pub fn encode_tuple(tuple: &Tuple, out: &mut Vec<u8>) {
    let ncols = tuple.arity() as u16;
    out.extend_from_slice(&ncols.to_le_bytes());
    for v in tuple.values() {
        encode_value(v, out);
    }
}

/// Encode a tuple into a fresh byte vector.
pub fn tuple_bytes(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.encoded_size());
    encode_tuple(tuple, &mut out);
    out
}

/// Decode a tuple from the byte string produced by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> RssResult<Tuple> {
    let mut cursor = Cursor::new(bytes);
    let ncols = cursor.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(&mut cursor)?);
    }
    if cursor.pos != bytes.len() {
        return Err(RssError::Corrupt(format!(
            "trailing bytes after tuple: {} of {}",
            bytes.len() - cursor.pos,
            bytes.len()
        )));
    }
    Ok(Tuple::new(values))
}

/// Bounds-checked reader over a byte slice; every overrun is a
/// [`RssError::Corrupt`], never a panic.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn slice(&mut self, n: usize) -> RssResult<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(RssError::Corrupt("truncated tuple bytes".into()));
        }
        // audit:allow(no-index) — the truncation check above bounds pos + n
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> RssResult<u8> {
        Ok(self.slice(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> RssResult<u16> {
        let s = self.slice(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub(crate) fn u32(&mut self) -> RssResult<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    pub(crate) fn array<const N: usize>(&mut self) -> RssResult<[u8; N]> {
        let s = self.slice(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;
    use crate::tuple;

    #[test]
    fn roundtrip_basic() {
        let t = tuple![1, "SMITH", 2.5];
        assert_eq!(decode_tuple(&tuple_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn roundtrip_nulls_and_empty() {
        let t = Tuple::new(vec![Value::Null, Value::Str(String::new())]);
        assert_eq!(decode_tuple(&tuple_bytes(&t)).unwrap(), t);
        let empty = Tuple::new(vec![]);
        assert_eq!(decode_tuple(&tuple_bytes(&empty)).unwrap(), empty);
    }

    #[test]
    fn encoded_size_is_exact() {
        let t = tuple![7, "abc", 1.25];
        assert_eq!(tuple_bytes(&t).len(), t.encoded_size());
    }

    #[test]
    fn rejects_truncated() {
        let t = tuple![1, "SMITH"];
        let bytes = tuple_bytes(&t);
        assert!(decode_tuple(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = tuple_bytes(&tuple![1]);
        bytes.push(0xFF);
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_tag() {
        // ncols=1, tag=9
        let bytes = vec![1, 0, 9];
        assert!(decode_tuple(&bytes).is_err());
    }

    fn arb_value(rng: &mut SplitMix64) -> Value {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";
        match rng.below(4) {
            0 => Value::Null,
            1 => Value::Int(rng.next_u64() as i64),
            // Raw bit patterns: exercises NaN payloads, infinities, subnormals.
            2 => Value::Float(f64::from_bits(rng.next_u64())),
            _ => {
                let len = rng.below(41) as usize;
                Value::Str(
                    (0..len)
                        .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = SplitMix64::new(0xC0DE_0001);
        for case in 0..512u64 {
            let n_values = rng.below(12) as usize;
            let values: Vec<Value> = (0..n_values).map(|_| arb_value(&mut rng)).collect();
            let t = Tuple::new(values);
            let bytes = tuple_bytes(&t);
            assert_eq!(bytes.len(), t.encoded_size(), "case {case}");
            let back = decode_tuple(&bytes).unwrap();
            // NaN payloads survive because floats roundtrip via bits; use
            // the total-order Eq on Value.
            assert_eq!(back, t, "case {case}");
        }
    }
}
