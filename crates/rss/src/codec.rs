//! Byte-level encoding of tuples for page storage.
//!
//! Tuples are stored on pages as flat byte strings:
//!
//! ```text
//! u16 column-count
//! per column: u8 tag, then payload
//!   tag 0 = NULL               (no payload)
//!   tag 1 = Int                (8 bytes LE)
//!   tag 2 = Float              (8 bytes LE, f64 bits)
//!   tag 3 = Str                (u16 LE length + UTF-8 bytes)
//! ```
//!
//! The format is deliberately simple — the paper's cost model cares about
//! how many *pages* tuples occupy, not about encoding cleverness — but it is
//! a real serialization boundary: every tuple that crosses the RSI has been
//! decoded from page bytes.

use crate::error::{RssError, RssResult};
use crate::sarg::{SargList, SargPred};
use crate::tuple::Tuple;
use crate::value::Value;
use std::cmp::Ordering;

const TAG_NULL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_STR: u8 = 3;

/// Encode one value (tag + payload) into `out`, appending.
pub(crate) fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            let len = s.len() as u16;
            out.extend_from_slice(&len.to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
    }
}

/// Decode one value from a cursor positioned at its tag byte.
pub(crate) fn decode_value(cursor: &mut Cursor<'_>) -> RssResult<Value> {
    let tag = cursor.u8()?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_INT => Value::Int(i64::from_le_bytes(cursor.array::<8>()?)),
        TAG_FLOAT => Value::Float(f64::from_bits(u64::from_le_bytes(cursor.array::<8>()?))),
        TAG_STR => {
            let len = cursor.u16()? as usize;
            let raw = cursor.slice(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| RssError::Corrupt("invalid utf-8 in string column".into()))?;
            Value::Str(s.to_string())
        }
        t => return Err(RssError::Corrupt(format!("unknown value tag {t}"))),
    })
}

/// Encode a key (u16 column count + values) into `out`. This is the same
/// layout as a tuple, reused for B-tree node keys.
pub(crate) fn encode_key(key: &[Value], out: &mut Vec<u8>) {
    let ncols = key.len() as u16;
    out.extend_from_slice(&ncols.to_le_bytes());
    for v in key {
        encode_value(v, out);
    }
}

/// Decode a key written by [`encode_key`] from a cursor.
pub(crate) fn decode_key(cursor: &mut Cursor<'_>) -> RssResult<Vec<Value>> {
    let ncols = cursor.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(cursor)?);
    }
    Ok(values)
}

/// Encode a tuple into `out`, appending.
pub fn encode_tuple(tuple: &Tuple, out: &mut Vec<u8>) {
    let ncols = tuple.arity() as u16;
    out.extend_from_slice(&ncols.to_le_bytes());
    for v in tuple.values() {
        encode_value(v, out);
    }
}

/// Encode a tuple into a fresh byte vector.
pub fn tuple_bytes(tuple: &Tuple) -> Vec<u8> {
    let mut out = Vec::with_capacity(tuple.encoded_size());
    encode_tuple(tuple, &mut out);
    out
}

/// Decode a tuple from the byte string produced by [`encode_tuple`].
pub fn decode_tuple(bytes: &[u8]) -> RssResult<Tuple> {
    let mut cursor = Cursor::new(bytes);
    let ncols = cursor.u16()? as usize;
    let mut values = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        values.push(decode_value(&mut cursor)?);
    }
    if cursor.pos != bytes.len() {
        return Err(RssError::Corrupt(format!(
            "trailing bytes after tuple: {} of {}",
            bytes.len() - cursor.pos,
            bytes.len()
        )));
    }
    Ok(Tuple::new(values))
}

/// A borrowed view of one encoded column value. Lets SARGs compare
/// against page bytes without allocating a [`Value`] (the `Str` arm is
/// the expensive one: a `String` per column per visited slot).
enum ValueRef<'a> {
    Null,
    Int(i64),
    Float(f64),
    Str(&'a str),
}

impl ValueRef<'_> {
    fn kind_rank(&self) -> u8 {
        match self {
            ValueRef::Null => 0,
            ValueRef::Int(_) | ValueRef::Float(_) => 1,
            ValueRef::Str(_) => 2,
        }
    }

    fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// Mirror of [`Value::cmp`] with a borrowed left side: NULL first,
    /// numbers compare across the Int/Float divide, NaN via `total_cmp`.
    fn cmp_value(&self, other: &Value) -> Ordering {
        match (self, other) {
            (ValueRef::Null, Value::Null) => Ordering::Equal,
            (ValueRef::Int(a), Value::Int(b)) => a.cmp(b),
            (ValueRef::Str(a), Value::Str(b)) => (*a).cmp(b.as_str()),
            (ValueRef::Float(a), Value::Float(b)) => a.total_cmp(b),
            (ValueRef::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (ValueRef::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            _ => {
                let other_rank = match other {
                    Value::Null => 0u8,
                    Value::Int(_) | Value::Float(_) => 1,
                    Value::Str(_) => 2,
                };
                self.kind_rank().cmp(&other_rank)
            }
        }
    }
}

/// Decode one value as a borrowed view from a cursor positioned at its
/// tag byte. Validates exactly what [`decode_value`] validates.
fn decode_value_ref<'a>(cursor: &mut Cursor<'a>) -> RssResult<ValueRef<'a>> {
    let tag = cursor.u8()?;
    Ok(match tag {
        TAG_NULL => ValueRef::Null,
        TAG_INT => ValueRef::Int(i64::from_le_bytes(cursor.array::<8>()?)),
        TAG_FLOAT => ValueRef::Float(f64::from_bits(u64::from_le_bytes(cursor.array::<8>()?))),
        TAG_STR => {
            let len = cursor.u16()? as usize;
            let raw = cursor.slice(len)?;
            let s = std::str::from_utf8(raw)
                .map_err(|_| RssError::Corrupt("invalid utf-8 in string column".into()))?;
            ValueRef::Str(s)
        }
        t => return Err(RssError::Corrupt(format!("unknown value tag {t}"))),
    })
}

/// Skip one encoded value without materializing or validating its
/// payload (a string's bytes are length-skipped, not UTF-8 checked —
/// [`decode_tuple`] performs the full check on every tuple that is
/// actually returned).
fn skip_value(cursor: &mut Cursor<'_>) -> RssResult<()> {
    let tag = cursor.u8()?;
    match tag {
        TAG_NULL => {}
        TAG_INT | TAG_FLOAT => {
            cursor.slice(8)?;
        }
        TAG_STR => {
            let len = cursor.u16()? as usize;
            cursor.slice(len)?;
        }
        t => return Err(RssError::Corrupt(format!("unknown value tag {t}"))),
    }
    Ok(())
}

/// SARG evaluation directly over an encoded tuple image.
///
/// A scan owns one of these and reuses it across slots: `matches` walks
/// the encoding **lazily** — only up to the highest column any predicate
/// references, skipping (not validating) the payloads of columns the
/// DNF never reads — records each needed column's offset in a reusable
/// scratch vector, then evaluates the DNF against borrowed views.
/// Rejected tuples are never materialized, and their unreferenced
/// suffix bytes are never even walked; that is the batch executor's
/// main CPU saving on selective scans. Every *accepted* tuple still
/// goes through [`decode_tuple`]'s full structural/UTF-8/trailing-bytes
/// validation before it crosses the RSI, so returned data is exactly as
/// checked as before; only corruption confined to tuples a SARG rejects
/// can go unreported.
#[derive(Default)]
pub(crate) struct EncodedEval {
    /// Scratch: offset of column i's tag byte in the current image.
    offsets: Vec<u32>,
    /// Columns the walk must cover: 1 + the highest column referenced by
    /// any predicate (0 for a trivial SARG list).
    ncols_needed: usize,
    /// When the whole DNF is one single-predicate factor — the shape of
    /// every join-probe SARG — `matches` skips straight to that column
    /// and compares once, with no offset table. This is the hottest
    /// instruction path of a nested-loop inner scan.
    single: Option<SargPred>,
}

impl EncodedEval {
    /// Build the evaluator for a fixed SARG list (the scan's own).
    pub(crate) fn for_sargs(sargs: &SargList) -> Self {
        let ncols_needed = sargs
            .factors
            .iter()
            .flat_map(|f| f.disjuncts.iter())
            .flatten()
            .map(|p| p.col + 1)
            .max()
            .unwrap_or(0);
        let single = match sargs.factors.as_slice() {
            [f] => match f.disjuncts.as_slice() {
                [conj] => match conj.as_slice() {
                    [pred] => Some(pred.clone()),
                    _ => None,
                },
                _ => None,
            },
            _ => None,
        };
        EncodedEval { offsets: Vec::new(), ncols_needed, single }
    }

    /// Whether the encoded tuple satisfies every factor of `sargs`
    /// (which must be the list this evaluator was built for).
    pub(crate) fn matches(&mut self, bytes: &[u8], sargs: &SargList) -> RssResult<bool> {
        let mut cursor = Cursor::new(bytes);
        let ncols = cursor.u16()? as usize;
        if let Some(pred) = &self.single {
            if pred.col >= ncols || pred.value.is_null() {
                return Ok(false);
            }
            for _ in 0..pred.col {
                skip_value(&mut cursor)?;
            }
            let left = decode_value_ref(&mut cursor)?;
            if left.is_null() {
                return Ok(false);
            }
            return Ok(op_holds(pred.op, left.cmp_value(&pred.value)));
        }
        let need = self.ncols_needed.min(ncols);
        self.offsets.clear();
        for _ in 0..need {
            self.offsets.push(cursor.pos as u32);
            skip_value(&mut cursor)?;
        }
        for factor in &sargs.factors {
            if factor.disjuncts.is_empty() {
                continue;
            }
            let mut any = false;
            for conj in &factor.disjuncts {
                let mut all = true;
                for pred in conj {
                    if !self.eval_pred(bytes, pred)? {
                        all = false;
                        break;
                    }
                }
                if all {
                    any = true;
                    break;
                }
            }
            if !any {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// One predicate against the walked image; out-of-range columns and
    /// NULLs never satisfy, mirroring [`SargPred::eval`].
    fn eval_pred(&self, bytes: &[u8], pred: &SargPred) -> RssResult<bool> {
        let Some(&off) = self.offsets.get(pred.col) else {
            return Ok(false);
        };
        let mut cursor = Cursor::new(bytes);
        cursor.pos = off as usize;
        let left = decode_value_ref(&mut cursor)?;
        if left.is_null() || pred.value.is_null() {
            return Ok(false);
        }
        Ok(op_holds(pred.op, left.cmp_value(&pred.value)))
    }
}

/// Whether a comparison outcome satisfies an operator.
fn op_holds(op: crate::sarg::CompareOp, ord: Ordering) -> bool {
    match op {
        crate::sarg::CompareOp::Eq => ord.is_eq(),
        crate::sarg::CompareOp::Ne => ord.is_ne(),
        crate::sarg::CompareOp::Lt => ord.is_lt(),
        crate::sarg::CompareOp::Le => ord.is_le(),
        crate::sarg::CompareOp::Gt => ord.is_gt(),
        crate::sarg::CompareOp::Ge => ord.is_ge(),
    }
}

/// Bounds-checked reader over a byte slice; every overrun is a
/// [`RssError::Corrupt`], never a panic.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    pub(crate) fn slice(&mut self, n: usize) -> RssResult<&'a [u8]> {
        let end = self.pos.saturating_add(n);
        let s = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| RssError::Corrupt("truncated tuple bytes".into()))?;
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> RssResult<u8> {
        Ok(self.slice(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> RssResult<u16> {
        let s = self.slice(2)?;
        Ok(u16::from_le_bytes([s[0], s[1]]))
    }

    pub(crate) fn u32(&mut self) -> RssResult<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    pub(crate) fn array<const N: usize>(&mut self) -> RssResult<[u8; N]> {
        let s = self.slice(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prng::SplitMix64;
    use crate::tuple;

    #[test]
    fn roundtrip_basic() {
        let t = tuple![1, "SMITH", 2.5];
        assert_eq!(decode_tuple(&tuple_bytes(&t)).unwrap(), t);
    }

    #[test]
    fn roundtrip_nulls_and_empty() {
        let t = Tuple::new(vec![Value::Null, Value::Str(String::new())]);
        assert_eq!(decode_tuple(&tuple_bytes(&t)).unwrap(), t);
        let empty = Tuple::new(vec![]);
        assert_eq!(decode_tuple(&tuple_bytes(&empty)).unwrap(), empty);
    }

    #[test]
    fn encoded_size_is_exact() {
        let t = tuple![7, "abc", 1.25];
        assert_eq!(tuple_bytes(&t).len(), t.encoded_size());
    }

    #[test]
    fn rejects_truncated() {
        let t = tuple![1, "SMITH"];
        let bytes = tuple_bytes(&t);
        assert!(decode_tuple(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = tuple_bytes(&tuple![1]);
        bytes.push(0xFF);
        assert!(decode_tuple(&bytes).is_err());
    }

    #[test]
    fn rejects_bad_tag() {
        // ncols=1, tag=9
        let bytes = vec![1, 0, 9];
        assert!(decode_tuple(&bytes).is_err());
    }

    fn arb_value(rng: &mut SplitMix64) -> Value {
        const CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789 _-";
        match rng.below(4) {
            0 => Value::Null,
            1 => Value::Int(rng.next_u64() as i64),
            // Raw bit patterns: exercises NaN payloads, infinities, subnormals.
            2 => Value::Float(f64::from_bits(rng.next_u64())),
            _ => {
                let len = rng.below(41) as usize;
                Value::Str(
                    (0..len)
                        .map(|_| CHARS[rng.below(CHARS.len() as u64) as usize] as char)
                        .collect(),
                )
            }
        }
    }

    #[test]
    fn prop_encoded_eval_matches_decoded_eval() {
        use crate::sarg::{CompareOp, SargExpr, SargList};
        let mut rng = SplitMix64::new(0xC0DE_0002);
        let ops = [
            CompareOp::Eq,
            CompareOp::Ne,
            CompareOp::Lt,
            CompareOp::Le,
            CompareOp::Gt,
            CompareOp::Ge,
        ];
        for case in 0..1024u64 {
            let n_values = rng.below(6) as usize;
            let t = Tuple::new((0..n_values).map(|_| arb_value(&mut rng)).collect());
            let bytes = tuple_bytes(&t);
            // Random DNF over random columns (sometimes out of range) and
            // random comparison values, including NULLs.
            let n_factors = rng.below(3) as usize;
            let factors: Vec<SargExpr> = (0..n_factors)
                .map(|_| SargExpr {
                    disjuncts: (0..rng.below(3) as usize)
                        .map(|_| {
                            (0..1 + rng.below(2) as usize)
                                .map(|_| SargPred {
                                    col: rng.below(7) as usize,
                                    op: ops[rng.below(6) as usize],
                                    value: arb_value(&mut rng),
                                })
                                .collect()
                        })
                        .collect(),
                })
                .collect();
            let sargs = SargList { factors };
            let mut eval = EncodedEval::for_sargs(&sargs);
            assert_eq!(
                eval.matches(&bytes, &sargs).unwrap(),
                sargs.eval(&t),
                "case {case}: sargs {sargs:?} on {t:?}"
            );
        }
    }

    #[test]
    fn encoded_eval_rejects_corrupt_referenced_prefix() {
        use crate::sarg::{CompareOp, SargExpr, SargList};
        let t = tuple!["SMITH", 1];
        let bytes = tuple_bytes(&t);
        // Predicate on column 1: the walk must cover columns 0..=1, so
        // truncation inside that prefix errors regardless of the SARG
        // outcome...
        let sargs: SargList = SargExpr::single(SargPred::new(1, CompareOp::Eq, 999i64)).into();
        let mut eval = EncodedEval::for_sargs(&sargs);
        assert!(!eval.matches(&bytes, &sargs).unwrap());
        assert!(eval.matches(&bytes[..bytes.len() - 1], &sargs).is_err());
        // ...while corruption *past* the referenced prefix is left to
        // `decode_tuple`, which only runs for accepted tuples: the lazy
        // walk neither validates nor reads the unreferenced suffix.
        let sargs0: SargList = SargExpr::single(SargPred::new(0, CompareOp::Eq, "NOBODY")).into();
        let mut eval0 = EncodedEval::for_sargs(&sargs0);
        let mut garbled = bytes.clone();
        garbled.push(0xFF);
        assert!(!eval0.matches(&garbled, &sargs0).unwrap());
    }

    #[test]
    fn prop_roundtrip() {
        let mut rng = SplitMix64::new(0xC0DE_0001);
        for case in 0..512u64 {
            let n_values = rng.below(12) as usize;
            let values: Vec<Value> = (0..n_values).map(|_| arb_value(&mut rng)).collect();
            let t = Tuple::new(values);
            let bytes = tuple_bytes(&t);
            assert_eq!(bytes.len(), t.encoded_size(), "case {case}");
            let back = decode_tuple(&bytes).unwrap();
            // NaN payloads survive because floats roundtrip via bits; use
            // the total-order Eq on Value.
            assert_eq!(back, t, "case {case}");
        }
    }
}
