//! Synchronization facade: `std::sync` by default, model-checkable on demand.
//!
//! Every latch and RMW atomic in the concurrent RSS layer goes through the
//! wrappers in this module instead of `std::sync` directly. In a normal
//! process they compile down to a thin delegation to `std` (one
//! thread-local read per operation). When the calling thread is a virtual
//! thread of the [`model`] harness, each acquire / release / wait / notify
//! / atomic-RMW becomes a *yield point*: the thread announces the
//! operation to the cooperative scheduler and parks until the explorer
//! grants it the next step. That is what lets `sysr-audit --model`
//! exhaustively enumerate small-thread interleavings of the sharded
//! buffer pool, the write-back gate, and the versioned plan cache — see
//! DESIGN.md §12.
//!
//! Mode selection is a runtime thread-local, not a `cfg` flag: the same
//! release binary CI builds is the one the model checker drives, so the
//! checked code is byte-for-byte the shipped code.
//!
//! Atomic **loads and stores pass through without yielding**: the model
//! explores latch and RMW interleavings, and each facade atomic here is
//! an independent monotonic counter (or a monotonically bumped clock)
//! whose loads/stores are already order-insensitive under `Relaxed`. RMWs
//! (`fetch_add`) do yield, because lost-update bugs live there.
//!
//! `LockResult` reuses `std::sync::PoisonError`, so existing
//! `.lock().unwrap_or_else(std::sync::PoisonError::into_inner)` call
//! sites compile unchanged against the facade.

use std::fmt;
use std::mem::ManuallyDrop;
use std::ops::{Deref, DerefMut};
use std::panic::Location;
use std::sync::atomic::Ordering;
use std::sync::{LockResult, PoisonError};

pub mod model;

/// Every file whose latches ride this facade, by workspace-relative
/// label. This is the single source of truth for `sysr-audit`'s
/// `latch-ordering` file scope (the lint imports it): a file that
/// acquires guards without appearing here fails the `latch-scope` rule
/// instead of silently escaping the ordering analysis.
pub const LATCHED_FILES: &[&str] = &[
    "crates/rss/src/buffer.rs",
    "crates/rss/src/pagefile.rs",
    "crates/rss/src/plancache.rs",
    "crates/rss/src/sharded.rs",
    "crates/rss/src/storage.rs",
    "crates/rss/src/sync.rs",
    "crates/rss/src/sync/model.rs",
    "crates/core/src/enumerate.rs",
];

/// The address identity of a facade object: how the model names a latch
/// or atomic across an execution (objects are compared by location, never
/// dereferenced through this).
fn addr<T>(x: &T) -> usize {
    x as *const T as usize
}

/// A mutex that yields to the model scheduler at acquire and release
/// when the current thread is a model virtual thread.
pub struct Mutex<T> {
    raw: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { raw: std::sync::Mutex::new(value) }
    }

    /// Acquire. Under the model this is a yield point; the scheduler
    /// grants the acquisition only while no virtual thread holds the
    /// latch, so the underlying real lock is always uncontended.
    #[track_caller]
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let acquired = Location::caller();
        model::on_acquire(addr(self), acquired);
        match self.raw.lock() {
            Ok(inner) => Ok(MutexGuard { lock: self, inner: ManuallyDrop::new(inner), acquired }),
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: ManuallyDrop::new(poisoned.into_inner()),
                acquired,
            })),
        }
    }

    /// Exclusive access without locking: `&mut self` proves no guard can
    /// exist, so there is no yield point to model.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.raw.get_mut()
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.raw.fmt(f)
    }
}

/// Guard for [`Mutex`]. Dropping it is a model yield point (release).
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: ManuallyDrop<std::sync::MutexGuard<'a, T>>,
    /// Where the guard was produced; release trace lines reuse it, since
    /// `Location::caller()` inside `Drop` names core's drop plumbing
    /// rather than the guard's scope.
    acquired: &'static Location<'static>,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // SAFETY: `inner` is taken exactly once — here, or in
        // `Condvar::wait`, which then forgets the guard (skipping this).
        unsafe { ManuallyDrop::drop(&mut self.inner) };
        // The real lock is released *before* the model learns of it, so
        // the model's holder entry (cleared at the announce) can never
        // claim a lock the OS still holds.
        model::on_release(addr(self.lock), self.acquired);
    }
}

/// A condition variable; `wait` and `notify_all` are model yield points.
pub struct Condvar {
    raw: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { raw: std::sync::Condvar::new() }
    }

    /// Atomically release the guard and park until notified. Under the
    /// model the virtual thread becomes *disabled* (it cannot be
    /// scheduled) until a `notify_all` on this condvar converts it into
    /// a pending re-acquisition of the guard's mutex.
    #[track_caller]
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let loc = Location::caller();
        let lock = guard.lock;
        // SAFETY: the guard is forgotten immediately after the take, so
        // its Drop can never observe the vacated slot.
        let inner = unsafe { ManuallyDrop::take(&mut guard.inner) };
        std::mem::forget(guard);
        if model::in_model() {
            // Drop the real guard first: the announce parks this thread,
            // and the notifier needs the real lock to make progress.
            drop(inner);
            model::on_cv_wait(addr(self), addr(lock), loc);
            // Granted: the scheduler converted us into an acquire of
            // `lock` and chose us while no model thread held it.
            match lock.raw.lock() {
                Ok(g) => Ok(MutexGuard { lock, inner: ManuallyDrop::new(g), acquired: loc }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: ManuallyDrop::new(poisoned.into_inner()),
                    acquired: loc,
                })),
            }
        } else {
            match self.raw.wait(inner) {
                Ok(g) => Ok(MutexGuard { lock, inner: ManuallyDrop::new(g), acquired: loc }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock,
                    inner: ManuallyDrop::new(poisoned.into_inner()),
                    acquired: loc,
                })),
            }
        }
    }

    /// Wake every waiter. Under the model each virtual thread parked on
    /// this condvar becomes a pending acquire of its mutex.
    #[track_caller]
    pub fn notify_all(&self) {
        model::on_notify(addr(self), Location::caller());
        // In model mode no virtual thread ever waits on the raw condvar
        // (they park on the scheduler instead), so this is a no-op then.
        self.raw.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.raw.fmt(f)
    }
}

macro_rules! facade_atomic {
    ($name:ident, $raw:path, $int:ty) => {
        /// Facade atomic: loads/stores pass through, RMWs yield to the
        /// model scheduler (see the module docs for why).
        pub struct $name {
            raw: $raw,
        }

        impl $name {
            pub const fn new(v: $int) -> Self {
                $name { raw: <$raw>::new(v) }
            }

            pub fn load(&self, order: Ordering) -> $int {
                self.raw.load(order)
            }

            pub fn store(&self, v: $int, order: Ordering) {
                self.raw.store(v, order)
            }

            #[track_caller]
            pub fn fetch_add(&self, v: $int, order: Ordering) -> $int {
                model::on_rmw(addr(self), Location::caller());
                self.raw.fetch_add(v, order)
            }

            pub fn get_mut(&mut self) -> &mut $int {
                self.raw.get_mut()
            }
        }

        impl Default for $name {
            fn default() -> Self {
                $name::new(0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.raw.fmt(f)
            }
        }
    };
}

facade_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
facade_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
facade_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_delegates_to_std_outside_the_model() {
        let m = Mutex::new(1u32);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 2);
        let a = AtomicU64::new(5);
        assert_eq!(a.fetch_add(2, Ordering::Relaxed), 5);
        assert_eq!(a.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn condvar_wait_roundtrip_outside_the_model() {
        use std::sync::Arc;
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock().unwrap();
            *g = true;
            drop(g);
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock().unwrap();
        while !*g {
            g = cv.wait(g).unwrap();
        }
        h.join().unwrap();
        assert!(*g);
    }

    #[test]
    fn latched_files_is_sorted_and_self_referential() {
        assert!(LATCHED_FILES.contains(&"crates/rss/src/sync.rs"));
        assert!(LATCHED_FILES.contains(&"crates/rss/src/sharded.rs"));
    }
}
