//! The statement plan cache as a concurrent, catalog-versioned map.
//!
//! Optimizing a repeated statement is pure waste when nothing the
//! optimizer reads has changed, so plans are cached keyed by the parsed
//! statement's canonical form and stamped with the catalog version they
//! were optimized under (`Catalog::version` in `sysr-catalog`; the cache
//! lives here in `sysr-rss` so the model checker can drive it without a
//! dependency cycle). The cache is striped: each stripe is an independent
//! `Mutex`-guarded map (keys hash to stripes), so concurrent sessions
//! planning different statements rarely contend, while hit/miss counters
//! are lock-free atomics that never lose an update.
//!
//! Version checking happens *inside* the stripe latch: a lookup under
//! version `v` either returns a value stamped exactly `v` or nothing —
//! no thread can be served a plan from before a catalog bump it has
//! already observed. Stale entries are discarded lazily on lookup.
//!
//! The cache is generic over the cached value so the concurrency tests
//! can drive it with self-describing payloads; the database instantiates
//! it with `QueryPlan`.
//!
//! Stripe latches and the hit/miss atomics go through [`crate::sync`],
//! so `sysr-audit --model` can exhaustively interleave lookups, inserts,
//! and version bumps (DESIGN.md §12).

use crate::sync::{AtomicU64, Mutex};
use std::collections::HashMap;
use std::sync::atomic::Ordering::Relaxed;

/// Stripe count: matches the widest session fan-out the stress suite
/// drives; keys spread uniformly via FNV-1a.
const STRIPES: usize = 8;

/// Total entry cap across stripes: repeated-statement workloads fit
/// easily; when an adhoc workload overflows a stripe, one resident
/// entry of that stripe is evicted to make room (planning again is
/// cheap — this just bounds memory, so a burst of one-off statements
/// cannot wipe a hot statement's plan 16 entries at a time).
pub const PLAN_CACHE_CAP: usize = 128;

struct Entry<V> {
    value: V,
    version: u64,
}

/// A concurrent map of `key → (value, version)` with exact hit/miss
/// accounting. See the module docs for the invariants.
pub struct VersionedCache<V> {
    stripes: Vec<Mutex<HashMap<String, Entry<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<V> Default for VersionedCache<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VersionedCache<V> {
    pub fn new() -> Self {
        VersionedCache {
            stripes: (0..STRIPES).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The stripe `key` hashes to. `h % len` is always in range, so the
    /// `Option` is `None` only for an (impossible) zero-stripe cache;
    /// callers degrade to a cache miss rather than panic.
    fn stripe(&self, key: &str) -> Option<&Mutex<HashMap<String, Entry<V>>>> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in key.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1_0000_01b3);
        }
        let i = (h % self.stripes.len().max(1) as u64) as usize;
        self.stripes.get(i)
    }

    /// Cumulative `(hits, misses)`. Exact: every lookup that returns a
    /// value counts one hit, every insert counts one miss, and both are
    /// single atomic increments.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.load(Relaxed), self.misses.load(Relaxed))
    }

    /// Number of entries currently cached.
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry, keeping the counters (they describe the
    /// session, not the cache contents).
    pub fn clear_entries(&self) {
        for s in &self.stripes {
            s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        }
    }
}

impl<V: Clone> VersionedCache<V> {
    /// Return the cached value for `key` if it was stamped with exactly
    /// `version`; a mismatched entry is dropped (the caller will
    /// re-derive and re-insert). Counts a hit only when a value is
    /// returned.
    pub fn lookup(&self, key: &str, version: u64) -> Option<V> {
        let mut map = self.stripe(key)?.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match map.get(key) {
            Some(entry) if entry.version == version => {
                let value = entry.value.clone();
                drop(map);
                self.hits.fetch_add(1, Relaxed);
                Some(value)
            }
            Some(_) => {
                map.remove(key);
                None
            }
            None => None,
        }
    }

    /// Cache `value` under `key`, stamped with `version`, counting one
    /// miss (the caller just derived the value because lookup returned
    /// nothing).
    pub fn insert(&self, key: String, version: u64, value: V) {
        self.misses.fetch_add(1, Relaxed);
        let Some(stripe) = self.stripe(&key) else { return };
        let mut map = stripe.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if map.len() >= PLAN_CACHE_CAP / STRIPES && !map.contains_key(&key) {
            // The cap is a memory bound, not an eviction policy: make
            // room by dropping one arbitrary resident entry rather than
            // the whole stripe, so adhoc churn evicts at most one plan
            // per insert.
            if let Some(evict) = map.keys().next().cloned() {
                map.remove(&evict);
            }
        }
        map.insert(key, Entry { value, version });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Stripe identity as a raw pointer, for grouping keys by stripe.
    fn stripe_ptr<V>(cache: &VersionedCache<V>, key: &str) -> *const () {
        cache.stripe(key).map_or(std::ptr::null(), |m| std::ptr::from_ref(m).cast())
    }

    #[test]
    fn lookup_counts_hits_and_inserts_count_misses() {
        let cache = VersionedCache::new();
        assert_eq!(cache.lookup("q", 0), None);
        assert_eq!(cache.stats(), (0, 0), "a bare miss lookup counts nothing yet");
        cache.insert("q".into(), 0, 41);
        assert_eq!(cache.stats(), (0, 1));
        assert_eq!(cache.lookup("q", 0), Some(41));
        assert_eq!(cache.stats(), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn version_mismatch_invalidates_lazily() {
        let cache = VersionedCache::new();
        cache.insert("q".into(), 3, 1);
        assert_eq!(cache.lookup("q", 4), None, "stale stamp never served");
        assert_eq!(cache.len(), 0, "stale entry dropped on sight");
        assert_eq!(cache.stats().0, 0, "stale lookup is not a hit");
    }

    #[test]
    fn overflow_stays_bounded_without_emptying() {
        let cache = VersionedCache::new();
        for i in 0..PLAN_CACHE_CAP * 2 {
            cache.insert(format!("q{i}"), 0, i);
        }
        assert!(cache.len() <= PLAN_CACHE_CAP, "cap bounds memory");
        assert!(!cache.is_empty(), "overflow evicts per entry, never wholesale");
    }

    #[test]
    fn stripe_overflow_evicts_exactly_one_entry() {
        let cache = VersionedCache::new();
        let per_stripe = PLAN_CACHE_CAP / STRIPES;
        // Collect keys that all hash to one stripe (compare slot identity).
        let target = stripe_ptr(&cache, "q0");
        let keys: Vec<String> = (0..)
            .map(|i: u32| format!("q{i}"))
            .filter(|k| stripe_ptr(&cache, k) == target)
            .take(per_stripe + 1)
            .collect();
        for k in &keys[..per_stripe] {
            cache.insert(k.clone(), 0, 1);
        }
        assert_eq!(cache.len(), per_stripe, "stripe filled to its share of the cap");
        cache.insert(keys[per_stripe].clone(), 0, 2);
        assert_eq!(cache.len(), per_stripe, "one in, one out — the stripe is not wiped");
        assert_eq!(cache.lookup(&keys[per_stripe], 0), Some(2), "new entry resident");
        let survivors = keys[..per_stripe].iter().filter(|k| cache.lookup(k, 0).is_some()).count();
        assert_eq!(survivors, per_stripe - 1, "exactly one prior entry was evicted");
    }

    #[test]
    fn reinserting_resident_key_at_cap_evicts_nothing() {
        let cache = VersionedCache::new();
        let per_stripe = PLAN_CACHE_CAP / STRIPES;
        let target = stripe_ptr(&cache, "q0");
        let keys: Vec<String> = (0..)
            .map(|i: u32| format!("q{i}"))
            .filter(|k| stripe_ptr(&cache, k) == target)
            .take(per_stripe)
            .collect();
        for k in &keys {
            cache.insert(k.clone(), 0, 1);
        }
        // Re-stamping a resident key (e.g. after a version bump) must
        // not evict a neighbour: the map does not grow.
        cache.insert(keys[0].clone(), 1, 7);
        assert_eq!(cache.len(), per_stripe);
        let survivors = keys
            .iter()
            .enumerate()
            .filter(|(i, k)| cache.lookup(k, if *i == 0 { 1 } else { 0 }).is_some())
            .count();
        assert_eq!(survivors, per_stripe, "every entry still resident");
    }
}
