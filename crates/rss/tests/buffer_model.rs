//! Model-based property test for the buffer pool: the LRU implementation
//! (HashMap + BTreeMap recency index) must agree, access for access, with
//! a trivially correct reference model (a Vec ordered by recency).

use sysr_rss::{BufferPool, FileId, PageKey, SplitMix64};

/// The obviously-correct reference: a recency-ordered vector.
struct ModelLru {
    capacity: usize,
    pages: Vec<PageKey>, // most recent last
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, pages: Vec::new() }
    }

    /// Returns true on a miss.
    fn access(&mut self, key: PageKey) -> bool {
        if let Some(pos) = self.pages.iter().position(|&k| k == key) {
            self.pages.remove(pos);
            self.pages.push(key);
            false
        } else {
            self.pages.push(key);
            if self.pages.len() > self.capacity {
                self.pages.remove(0);
            }
            true
        }
    }

    fn invalidate(&mut self, file: FileId) {
        self.pages.retain(|k| k.file != file);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(PageKey),
    InvalidateFile(FileId),
    Clear,
}

fn arb_key(rng: &mut SplitMix64) -> PageKey {
    let id = rng.below(3) as u32;
    let file = match rng.below(3) {
        0 => FileId::Segment(id),
        1 => FileId::Index(id),
        _ => FileId::Temp(id),
    };
    PageKey::new(file, rng.below(12) as u32)
}

fn arb_op(rng: &mut SplitMix64) -> Op {
    // Weights as in the original strategy: 8 access : 1 invalidate : 1 clear.
    match rng.below(10) {
        0..=7 => Op::Access(arb_key(rng)),
        8 => {
            let id = rng.below(3) as u32;
            Op::InvalidateFile(if rng.bool() { FileId::Segment(id) } else { FileId::Temp(id) })
        }
        _ => Op::Clear,
    }
}

#[test]
fn pool_matches_reference_model() {
    let mut rng = SplitMix64::new(0xBFFE_0001);
    for case in 0..128u64 {
        let capacity = 1 + rng.below(9) as usize;
        let n_ops = 1 + rng.below(399) as usize;
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut misses = 0u64;
        let mut hits = 0u64;
        for _ in 0..n_ops {
            match arb_op(&mut rng) {
                Op::Access(key) => {
                    let miss = pool.access(key).unwrap();
                    let model_miss = model.access(key);
                    assert_eq!(
                        miss, model_miss,
                        "case {case}: divergence on {key:?} (capacity {capacity})"
                    );
                    if miss {
                        misses += 1
                    } else {
                        hits += 1
                    }
                }
                Op::InvalidateFile(file) => {
                    pool.invalidate_file(file);
                    model.invalidate(file);
                }
                Op::Clear => {
                    pool.clear();
                    model.pages.clear();
                }
            }
            assert_eq!(pool.resident_pages(), model.pages.len(), "case {case}");
            assert!(pool.resident_pages() <= capacity, "case {case}");
        }
        let stats = pool.stats();
        assert_eq!(stats.page_fetches(), misses, "case {case}");
        assert_eq!(stats.buffer_hits, hits, "case {case}");
    }
}
