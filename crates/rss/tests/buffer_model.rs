//! Model-based property test for the buffer pool: the LRU implementation
//! (HashMap + BTreeMap recency index) must agree, access for access, with
//! a trivially correct reference model (a Vec ordered by recency).

use proptest::prelude::*;
use sysr_rss::{BufferPool, FileId, PageKey};

/// The obviously-correct reference: a recency-ordered vector.
struct ModelLru {
    capacity: usize,
    pages: Vec<PageKey>, // most recent last
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        ModelLru { capacity, pages: Vec::new() }
    }

    /// Returns true on a miss.
    fn access(&mut self, key: PageKey) -> bool {
        if let Some(pos) = self.pages.iter().position(|&k| k == key) {
            self.pages.remove(pos);
            self.pages.push(key);
            false
        } else {
            self.pages.push(key);
            if self.pages.len() > self.capacity {
                self.pages.remove(0);
            }
            true
        }
    }

    fn invalidate(&mut self, file: FileId) {
        self.pages.retain(|k| k.file != file);
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(PageKey),
    InvalidateFile(FileId),
    Clear,
}

fn arb_key() -> impl Strategy<Value = PageKey> {
    (
        prop_oneof![
            (0u32..3).prop_map(FileId::Segment),
            (0u32..3).prop_map(FileId::Index),
            (0u32..3).prop_map(FileId::Temp),
        ],
        0u32..12,
    )
        .prop_map(|(file, page)| PageKey::new(file, page))
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => arb_key().prop_map(Op::Access),
        1 => prop_oneof![
            (0u32..3).prop_map(FileId::Segment),
            (0u32..3).prop_map(FileId::Temp),
        ]
        .prop_map(Op::InvalidateFile),
        1 => Just(Op::Clear),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn pool_matches_reference_model(
        capacity in 1usize..10,
        ops in prop::collection::vec(arb_op(), 1..400),
    ) {
        let mut pool = BufferPool::new(capacity);
        let mut model = ModelLru::new(capacity);
        let mut misses = 0u64;
        let mut hits = 0u64;
        for op in ops {
            match op {
                Op::Access(key) => {
                    let miss = pool.access(key);
                    let model_miss = model.access(key);
                    prop_assert_eq!(
                        miss, model_miss,
                        "divergence on {:?} (capacity {})", key, capacity
                    );
                    if miss { misses += 1 } else { hits += 1 }
                }
                Op::InvalidateFile(file) => {
                    pool.invalidate_file(file);
                    model.invalidate(file);
                }
                Op::Clear => {
                    pool.clear();
                    model.pages.clear();
                }
            }
            prop_assert_eq!(pool.resident_pages(), model.pages.len());
            prop_assert!(pool.resident_pages() <= capacity);
        }
        let stats = pool.stats();
        prop_assert_eq!(stats.page_fetches(), misses);
        prop_assert_eq!(stats.buffer_hits, hits);
    }
}
