//! Interesting orders and order equivalence classes.
//!
//! "We say that a tuple order is an *interesting order* if that order is
//! one specified by the query block's GROUP BY or ORDER BY clauses" (§4);
//! "also every join column defines an interesting order" (§5). "To
//! minimize the number of different interesting orders and hence the
//! number of solutions in the tree, equivalence classes for interesting
//! orders are computed and only the best solution for each equivalence
//! class is saved" — e.g. with join predicates `E.DNO = D.DNO` and
//! `D.DNO = F.DNO`, all three columns belong to one class.
//!
//! An order is represented canonically as an [`OrderKey`]: the sequence of
//! equivalence-class ids of its leading columns, truncated at the first
//! column that participates in no interesting order. Plans whose keys are
//! equal are interchangeable for every later use of ordering, so the DP
//! keeps only the cheapest of them.

use crate::query::{BoundQuery, ColId};
use std::collections::HashMap;

/// Canonical order descriptor: equivalence-class ids of the leading sort
/// columns. Empty = "unordered" (or ordered in a way nothing can use).
pub type OrderKey = Vec<usize>;

/// Order equivalence classes for one query block.
#[derive(Debug)]
pub struct OrderInfo {
    class_of: HashMap<ColId, usize>,
    /// Class ids the block's required order (GROUP BY / all-ascending
    /// ORDER BY) maps to.
    pub required: OrderKey,
    n_classes: usize,
}

impl OrderInfo {
    pub fn build(query: &BoundQuery) -> OrderInfo {
        // Union-find over the columns that appear in equi-join predicates.
        let mut uf = UnionFind::default();
        for f in &query.factors {
            if let Some((a, b)) = f.equijoin {
                uf.union(a, b);
            }
        }
        // Required-order columns are interesting even if never joined.
        for &c in &query.required_order() {
            uf.find(c);
        }
        let (class_of, n_classes) = uf.into_classes();
        let required = query.required_order().iter().map(|c| class_of[c]).collect::<Vec<_>>();
        OrderInfo { class_of, required, n_classes }
    }

    /// Number of distinct interesting-order equivalence classes.
    pub fn class_count(&self) -> usize {
        self.n_classes
    }

    /// The equivalence class of a column, if the column participates in any
    /// interesting order.
    pub fn class_of(&self, col: ColId) -> Option<usize> {
        self.class_of.get(&col).copied()
    }

    /// Canonicalize a produced column order: take the longest prefix of
    /// interesting columns and map to class ids.
    pub fn order_key(&self, cols: &[ColId]) -> OrderKey {
        let mut key = Vec::new();
        for c in cols {
            match self.class_of(*c) {
                Some(cls) => key.push(cls),
                None => break,
            }
        }
        key
    }

    /// Whether rows ordered by `key` satisfy the block's required order
    /// (the required classes must be a prefix of the produced classes).
    pub fn satisfies_required(&self, key: &OrderKey) -> bool {
        key.len() >= self.required.len() && key[..self.required.len()] == self.required[..]
    }

    /// Length of the longest prefix of the block's required order that
    /// rows ordered by `key` already deliver — the prefix-coverage rule
    /// for partial sorts. Rows with `key` arrive grouped into runs of the
    /// first `common_prefix_with_required(key)` required classes, so a
    /// sort only has to order tuples *within* each run. `0` means no
    /// usable prefix (a sort must process the whole input).
    pub fn common_prefix_with_required(&self, key: &OrderKey) -> usize {
        key.iter().zip(self.required.iter()).take_while(|(a, b)| a == b).count()
    }

    /// Whether an order with this key begins with the class of `col` —
    /// the condition for using it as the sorted side of a merge join on
    /// `col`.
    pub fn leads_with(&self, key: &OrderKey, col: ColId) -> bool {
        match (key.first(), self.class_of(col)) {
            (Some(&k), Some(c)) => k == c,
            _ => false,
        }
    }
}

/// Minimal union-find over `ColId`s, assigning dense ids on first contact.
#[derive(Default)]
struct UnionFind {
    ids: HashMap<ColId, usize>,
    parent: Vec<usize>,
}

impl UnionFind {
    fn find(&mut self, col: ColId) -> usize {
        let id = match self.ids.get(&col) {
            Some(&id) => id,
            None => {
                let id = self.parent.len();
                self.ids.insert(col, id);
                self.parent.push(id);
                id
            }
        };
        self.root(id)
    }

    fn root(&mut self, mut id: usize) -> usize {
        while self.parent[id] != id {
            self.parent[id] = self.parent[self.parent[id]];
            id = self.parent[id];
        }
        id
    }

    fn union(&mut self, a: ColId, b: ColId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Collapse to a map `ColId → dense class id`. Columns are visited in
    /// sorted order so the dense numbering is a pure function of the query
    /// — two builds over the same block always agree, which the search's
    /// parallel-vs-sequential determinism guarantee relies on.
    fn into_classes(mut self) -> (HashMap<ColId, usize>, usize) {
        let mut cols: Vec<ColId> = self.ids.keys().copied().collect();
        cols.sort_unstable();
        let mut dense = HashMap::new();
        let mut out = HashMap::new();
        for col in cols {
            let root = self.find(col);
            let next = dense.len();
            let id = *dense.entry(root).or_insert(next);
            out.insert(col, id);
        }
        let n = dense.len();
        (out, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{BExpr, BoundQuery, Factor, SExpr};
    use sysr_rss::CompareOp;

    fn col(t: usize, c: usize) -> ColId {
        ColId::new(t, c)
    }

    fn equijoin_factor(a: ColId, b: ColId) -> Factor {
        let expr = BExpr::Cmp { op: CompareOp::Eq, left: SExpr::Col(a), right: SExpr::Col(b) };
        let tables = expr.local_tables();
        Factor { expr, tables, equijoin: Some((a, b)) }
    }

    fn query_with(factors: Vec<Factor>, order_by: Vec<ColId>) -> BoundQuery {
        BoundQuery {
            tables: vec![],
            factors,
            select: vec![],
            distinct: false,
            group_by: vec![],
            order_by: order_by.into_iter().map(|c| (c, false)).collect(),
            subqueries: vec![],
            aggregated: false,
        }
    }

    #[test]
    fn transitive_equivalence_from_paper() {
        // E.DNO = D.DNO and D.DNO = F.DNO → one class of three columns.
        let q = query_with(
            vec![equijoin_factor(col(0, 1), col(1, 0)), equijoin_factor(col(1, 0), col(2, 0))],
            vec![],
        );
        let info = OrderInfo::build(&q);
        assert_eq!(info.class_count(), 1);
        let a = info.class_of(col(0, 1)).unwrap();
        assert_eq!(info.class_of(col(1, 0)), Some(a));
        assert_eq!(info.class_of(col(2, 0)), Some(a));
    }

    #[test]
    fn separate_join_columns_get_separate_classes() {
        let q = query_with(
            vec![equijoin_factor(col(0, 1), col(1, 0)), equijoin_factor(col(0, 2), col(2, 0))],
            vec![],
        );
        let info = OrderInfo::build(&q);
        assert_eq!(info.class_count(), 2);
        assert_ne!(info.class_of(col(1, 0)), info.class_of(col(2, 0)));
    }

    #[test]
    fn order_key_truncates_at_uninteresting() {
        let q = query_with(vec![equijoin_factor(col(0, 1), col(1, 0))], vec![]);
        let info = OrderInfo::build(&q);
        // col(0,5) is not interesting → key stops before it.
        let key = info.order_key(&[col(0, 1), col(0, 5), col(1, 0)]);
        assert_eq!(key.len(), 1);
        assert!(info.order_key(&[col(0, 9)]).is_empty());
    }

    #[test]
    fn common_prefix_counts_leading_required_classes() {
        let q = query_with(vec![equijoin_factor(col(0, 1), col(1, 0))], vec![col(0, 1), col(0, 3)]);
        let info = OrderInfo::build(&q);
        // The equivalent column from the other class counts as the prefix.
        assert_eq!(info.common_prefix_with_required(&info.order_key(&[col(1, 0)])), 1);
        // Full coverage reports the whole requirement.
        assert_eq!(info.common_prefix_with_required(&info.order_key(&[col(0, 1), col(0, 3)])), 2);
        // A non-leading required column covers nothing.
        assert_eq!(info.common_prefix_with_required(&info.order_key(&[col(0, 3)])), 0);
        assert_eq!(info.common_prefix_with_required(&OrderKey::new()), 0);
    }

    #[test]
    fn required_order_satisfaction() {
        let q = query_with(vec![equijoin_factor(col(0, 1), col(1, 0))], vec![col(0, 1), col(0, 3)]);
        let info = OrderInfo::build(&q);
        assert_eq!(info.required.len(), 2);
        // A plan ordered on D.DNO (same class as E.DNO) then E.c3 works.
        let key = info.order_key(&[col(1, 0), col(0, 3)]);
        assert!(info.satisfies_required(&key));
        // Order on only the first column is not enough.
        let key = info.order_key(&[col(1, 0)]);
        assert!(!info.satisfies_required(&key));
        // Wrong leading column fails.
        let key = info.order_key(&[col(0, 3)]);
        assert!(!info.satisfies_required(&key));
    }

    #[test]
    fn empty_required_is_always_satisfied() {
        let q = query_with(vec![], vec![]);
        let info = OrderInfo::build(&q);
        assert!(info.satisfies_required(&vec![]));
        assert_eq!(info.class_count(), 0);
    }

    #[test]
    fn class_numbering_is_deterministic_across_builds() {
        // Dense class ids must be a pure function of the query, not of
        // HashMap iteration order: trace keys and the parallel search's
        // determinism argument depend on it.
        let q = query_with(
            vec![
                equijoin_factor(col(0, 1), col(1, 0)),
                equijoin_factor(col(0, 2), col(2, 0)),
                equijoin_factor(col(2, 1), col(3, 0)),
            ],
            vec![col(1, 0)],
        );
        let a = OrderInfo::build(&q);
        let b = OrderInfo::build(&q);
        assert_eq!(a.required, b.required);
        for t in 0..4 {
            for c in 0..3 {
                assert_eq!(a.class_of(col(t, c)), b.class_of(col(t, c)), "col ({t},{c})");
            }
        }
    }

    #[test]
    fn leads_with_checks_head_class() {
        let q = query_with(vec![equijoin_factor(col(0, 1), col(1, 0))], vec![]);
        let info = OrderInfo::build(&q);
        let key = info.order_key(&[col(0, 1)]);
        assert!(info.leads_with(&key, col(1, 0)), "equivalent column leads");
        assert!(!info.leads_with(&key, col(0, 9)));
        assert!(!info.leads_with(&Vec::new(), col(0, 1)));
    }
}
