//! Execution plans — our analog of System R's Access Specification
//! Language (ASL).
//!
//! "This minimum cost solution is represented by a structural modification
//! of the parse tree. The result is an execution plan" (§2). A plan here
//! is a tree of scans, joins, and sorts, each node annotated with the
//! optimizer's predicted cost, output cardinality, and produced tuple
//! order. `sysr-executor` interprets the tree; `EXPLAIN` renders it.

use crate::cost::Cost;
use crate::enumerate::EnumerationStats;
use crate::query::{BoundQuery, ColId, Operand};
use std::fmt::Write as _;
use sysr_catalog::Catalog;
use sysr_rss::{CompareOp, IndexId};

/// One sargable atom: `tuple[col] op operand`, resolvable below the RSI.
#[derive(Debug, Clone, PartialEq)]
pub struct SargAtom {
    /// Column position within the scanned relation's tuple.
    pub col: usize,
    pub op: CompareOp,
    pub operand: Operand,
}

/// A boolean factor compiled to search-argument form: a DNF over sargable
/// atoms, tagged with the factor it implements.
#[derive(Debug, Clone, PartialEq)]
pub struct SargFactor {
    /// Index into [`BoundQuery::factors`].
    pub factor: usize,
    /// OR of ANDs of atoms; the whole factor holds iff some disjunct holds.
    pub dnf: Vec<Vec<SargAtom>>,
}

/// Bounds for the non-equal tail column of an index probe.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IndexRange {
    /// Lower bound (operand, inclusive).
    pub lower: Option<(Operand, bool)>,
    /// Upper bound (operand, inclusive).
    pub upper: Option<(Operand, bool)>,
}

/// How a relation is accessed.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Full segment scan.
    Segment,
    /// B-tree index scan. `eq_prefix` holds equality probes for the
    /// leading key columns; `range` optionally bounds the next key column.
    /// `matching` lists the boolean factors the index *matches* (paper §4)
    /// — the F(preds) of the Table 2 formulas.
    Index {
        index: IndexId,
        eq_prefix: Vec<Operand>,
        range: Option<IndexRange>,
        matching: Vec<usize>,
        /// Answer from index keys alone, never touching data pages —
        /// valid when the index key covers every column the query needs
        /// from this relation. An extension beyond the paper (System R
        /// indexes carried only TIDs), opt-in via
        /// `OptimizerConfig::index_only_scans`.
        index_only: bool,
    },
}

/// A single-relation scan node.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanPlan {
    /// FROM-list position of the relation.
    pub table: usize,
    pub access: Access,
    /// Factors applied as SARGs (below the RSI).
    pub sargs: Vec<SargFactor>,
    /// Factors applied above the RSI at this scan (non-sargable shapes:
    /// OR trees, subquery membership, expression comparisons).
    pub residual: Vec<usize>,
}

/// Plan tree node kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanNode {
    Scan(ScanPlan),
    /// Nested loops: for each outer row, open the inner scan (whose probe
    /// operands may reference outer columns).
    NestedLoop {
        outer: Box<PlanExpr>,
        inner: Box<PlanExpr>,
    },
    /// Merging scans over `outer_key = inner_key`. The inner side is
    /// either a `Sort` (sorted temporary list, synchronized group scan) or
    /// an ordered index scan probed per distinct outer value. `residual`
    /// factors are evaluated on each composite row.
    Merge {
        outer: Box<PlanExpr>,
        inner: Box<PlanExpr>,
        outer_key: ColId,
        inner_key: ColId,
        residual: Vec<usize>,
    },
    /// Sort the input into `keys` order (ascending). `sorted_prefix` is
    /// the number of leading `keys` columns the input already delivers
    /// (proved against the input's produced order): `0` sorts the whole
    /// input through a temporary list; a positive prefix lets the
    /// executor sort run-at-a-time, spilling only oversized runs.
    Sort {
        input: Box<PlanExpr>,
        keys: Vec<ColId>,
        sorted_prefix: usize,
    },
}

/// A plan node with the optimizer's annotations.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanExpr {
    pub node: PlanNode,
    /// Predicted cumulative cost of producing this node's full output.
    pub cost: Cost,
    /// Predicted output cardinality.
    pub rows: f64,
    /// Produced tuple order (leading sort columns), empty if unordered.
    pub order: Vec<ColId>,
}

impl PlanExpr {
    /// Tables covered by this subtree.
    pub fn tables(&self) -> crate::bitset::TableSet {
        match &self.node {
            PlanNode::Scan(s) => crate::bitset::TableSet::single(s.table),
            PlanNode::NestedLoop { outer, inner } => outer.tables().union(inner.tables()),
            PlanNode::Merge { outer, inner, .. } => outer.tables().union(inner.tables()),
            PlanNode::Sort { input, .. } => input.tables(),
        }
    }

    /// Number of scan/join/sort nodes (reporting).
    pub fn node_count(&self) -> usize {
        1 + match &self.node {
            PlanNode::Scan(_) => 0,
            PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
                outer.node_count() + inner.node_count()
            }
            PlanNode::Sort { input, .. } => input.node_count(),
        }
    }

    /// Count of join nodes.
    pub fn join_count(&self) -> usize {
        match &self.node {
            PlanNode::Scan(_) => 0,
            PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
                1 + outer.join_count() + inner.join_count()
            }
            PlanNode::Sort { input, .. } => input.join_count(),
        }
    }

    /// The order of FROM-list tables as they appear left-to-right in the
    /// join sequence (outer first).
    pub fn join_order(&self) -> Vec<usize> {
        let mut order = Vec::new();
        self.collect_join_order(&mut order);
        order
    }

    fn collect_join_order(&self, out: &mut Vec<usize>) {
        match &self.node {
            PlanNode::Scan(s) => out.push(s.table),
            PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
                outer.collect_join_order(out);
                inner.collect_join_order(out);
            }
            PlanNode::Sort { input, .. } => input.collect_join_order(out),
        }
    }
}

/// A complete plan for one query block, plus plans for its nested blocks.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    /// The bound query this plan answers (the executor needs the SELECT
    /// list, factors, grouping, and subquery definitions).
    pub query: BoundQuery,
    /// The access plan for the block's FROM tables.
    pub root: PlanExpr,
    /// Plans for `query.subqueries`, index-aligned.
    pub subplans: Vec<QueryPlan>,
    /// Factors that reference no table of this block (outer references /
    /// constants); the executor checks them once per correlation binding.
    pub block_filters: Vec<usize>,
    /// Total predicted cost (root plus predicted subquery evaluations).
    pub predicted: Cost,
    /// Predicted result cardinality (QCARD).
    pub qcard: f64,
    /// Search statistics from the enumerator.
    pub stats: EnumerationStats,
}

impl QueryPlan {
    /// Render an EXPLAIN tree.
    pub fn explain(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        self.render(catalog, &mut out, 0);
        out
    }

    fn render(&self, catalog: &Catalog, out: &mut String, depth: usize) {
        render_node(&self.root, &self.query, catalog, out, depth);
        if !self.block_filters.is_empty() {
            let _ =
                writeln!(out, "{}block filters: {:?}", "  ".repeat(depth + 1), self.block_filters);
        }
        for (i, sub) in self.subplans.iter().enumerate() {
            let def = &self.query.subqueries[i];
            let _ = writeln!(
                out,
                "{}subquery #{i} ({}{}):",
                "  ".repeat(depth + 1),
                if def.correlated { "correlated " } else { "" },
                if def.scalar { "scalar" } else { "set" },
            );
            sub.render(catalog, out, depth + 2);
        }
    }
}

pub(crate) fn table_name(query: &BoundQuery, table: usize) -> &str {
    query.tables.get(table).map(|t| t.name.as_str()).unwrap_or("?")
}

/// The head line of one plan node (no padding, no cost annotation) —
/// shared between `EXPLAIN` and `EXPLAIN ANALYZE` rendering.
pub(crate) fn node_head(plan: &PlanExpr, query: &BoundQuery, catalog: &Catalog) -> String {
    match &plan.node {
        PlanNode::Scan(s) => {
            let tname = table_name(query, s.table);
            match &s.access {
                Access::Segment => format!("SEGMENT SCAN {tname}"),
                Access::Index { index, eq_prefix, range, matching, index_only } => {
                    let iname = catalog
                        .index(*index)
                        .map(|i| i.name.clone())
                        .unwrap_or_else(|| format!("#{index}"));
                    let mut probe = String::new();
                    if !eq_prefix.is_empty() {
                        let _ = write!(
                            probe,
                            " eq[{}]",
                            eq_prefix.iter().map(|o| o.to_string()).collect::<Vec<_>>().join(", ")
                        );
                    }
                    if let Some(r) = range {
                        if let Some((op, incl)) = &r.lower {
                            let _ = write!(probe, " from{}{}", if *incl { "=" } else { ">" }, op);
                        }
                        if let Some((op, incl)) = &r.upper {
                            let _ = write!(probe, " to{}{}", if *incl { "=" } else { "<" }, op);
                        }
                    }
                    let only = if *index_only { " INDEX-ONLY" } else { "" };
                    format!("INDEX SCAN{only} {tname} via {iname}{probe} matching={matching:?}")
                }
            }
        }
        PlanNode::NestedLoop { .. } => "NESTED LOOP JOIN".to_string(),
        PlanNode::Merge { outer_key, inner_key, residual, .. } => {
            format!("MERGE JOIN on {outer_key}={inner_key} residual={residual:?}")
        }
        PlanNode::Sort { keys, sorted_prefix, .. } => {
            let keys: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
            let prefix = if *sorted_prefix > 0 {
                format!(" (prefix={sorted_prefix})")
            } else {
                String::new()
            };
            format!("SORT{prefix} by [{}]", keys.join(", "))
        }
    }
}

fn render_node(
    plan: &PlanExpr,
    query: &BoundQuery,
    catalog: &Catalog,
    out: &mut String,
    depth: usize,
) {
    let pad = "  ".repeat(depth);
    let annot = format!("(cost={}, rows={:.1})", plan.cost, plan.rows);
    let _ = writeln!(out, "{pad}{} {annot}", node_head(plan, query, catalog));
    match &plan.node {
        PlanNode::Scan(s) => {
            if !s.sargs.is_empty() {
                let ids: Vec<usize> = s.sargs.iter().map(|sf| sf.factor).collect();
                let _ = writeln!(out, "{pad}  sargs: factors {ids:?}");
            }
            if !s.residual.is_empty() {
                let _ = writeln!(out, "{pad}  residual: factors {:?}", s.residual);
            }
        }
        PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
            render_node(outer, query, catalog, out, depth + 1);
            render_node(inner, query, catalog, out, depth + 1);
        }
        PlanNode::Sort { input, .. } => {
            render_node(input, query, catalog, out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(table: usize) -> PlanExpr {
        PlanExpr {
            node: PlanNode::Scan(ScanPlan {
                table,
                access: Access::Segment,
                sargs: vec![],
                residual: vec![],
            }),
            cost: Cost::new(10.0, 100.0),
            rows: 100.0,
            order: vec![],
        }
    }

    #[test]
    fn tables_and_join_order() {
        let join = PlanExpr {
            node: PlanNode::NestedLoop { outer: Box::new(scan(2)), inner: Box::new(scan(0)) },
            cost: Cost::new(50.0, 500.0),
            rows: 42.0,
            order: vec![],
        };
        assert_eq!(join.tables().iter().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(join.join_order(), vec![2, 0]);
        assert_eq!(join.join_count(), 1);
        assert_eq!(join.node_count(), 3);
    }

    #[test]
    fn sort_preserves_tables() {
        let s = PlanExpr {
            node: PlanNode::Sort {
                input: Box::new(scan(1)),
                keys: vec![ColId::new(1, 0)],
                sorted_prefix: 0,
            },
            cost: Cost::ZERO,
            rows: 1.0,
            order: vec![ColId::new(1, 0)],
        };
        assert_eq!(s.tables().iter().collect::<Vec<_>>(), vec![1]);
        assert_eq!(s.join_count(), 0);
    }
}
