//! Indexed plan arena for the join-order search.
//!
//! The DP memo used to store one deep-cloned [`PlanExpr`] tree per
//! solution slot, and every candidate join cloned its outer subtree
//! again. The arena replaces those trees with flat nodes referencing
//! their children by [`NodeId`]: a candidate join is one node push, memo
//! entries are node ids, and shared outers are shared nodes. Trees are
//! only materialized back into [`PlanExpr`] form for the plans that
//! actually leave the search (the winner, trace entries, oracle dumps).
//!
//! Two-tier addressing supports the parallel search: each DP level
//! freezes the main arena and workers push candidates into private
//! *scratch* tails whose ids start at the frozen length (`base`). Ids
//! below `base` always mean main-arena nodes; ids at or above `base` are
//! scratch-local. After the level's items are merged, only the surviving
//! slots' subtrees are copied into the main arena ([`PlanArena::commit`])
//! — pruned candidates are dropped wholesale with their scratch vectors,
//! which is where the allocation savings come from.

use crate::cost::Cost;
use crate::intern::KeyId;
use crate::num::dense_id;
use crate::plan::{PlanExpr, PlanNode, ScanPlan};
use crate::query::ColId;
use std::collections::HashMap;

/// Index of a node in a [`PlanArena`] (or a scratch tail above `base`).
pub type NodeId = u32;

/// One plan node, children by id. `cost`/`rows`/`key` mirror the
/// [`PlanExpr`] annotations; `count` is the subtree's node count with
/// repetition (shared children counted per reference), matching what
/// `PlanExpr::node_count` reports for the materialized tree.
#[derive(Debug, Clone)]
pub struct ArenaNode {
    pub kind: NodeKind,
    pub cost: Cost,
    pub rows: f64,
    /// Interned order key of the produced tuple order.
    pub key: KeyId,
    pub count: u32,
}

/// The node shapes, mirroring [`PlanNode`]. Only leaves and sorts carry
/// their produced column order; joins inherit the outer's order, which
/// materialization resolves recursively.
#[derive(Debug, Clone)]
pub enum NodeKind {
    Scan { scan: ScanPlan, order: Vec<ColId> },
    NestedLoop { outer: NodeId, inner: NodeId },
    Merge { outer: NodeId, inner: NodeId, outer_key: ColId, inner_key: ColId, residual: Vec<usize> },
    Sort { input: NodeId, keys: Vec<ColId>, sorted_prefix: usize },
}

/// The committed arena: nodes the DP memo references between levels.
#[derive(Debug, Default)]
pub struct PlanArena {
    pub nodes: Vec<ArenaNode>,
}

impl PlanArena {
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn node(&self, id: NodeId) -> &ArenaNode {
        &self.nodes[id as usize]
    }

    /// Rebuild the full [`PlanExpr`] tree for a committed node.
    pub fn materialize(&self, id: NodeId) -> PlanExpr {
        let n = self.node(id);
        match &n.kind {
            NodeKind::Scan { scan, order } => PlanExpr {
                node: PlanNode::Scan(scan.clone()),
                cost: n.cost,
                rows: n.rows,
                order: order.clone(),
            },
            NodeKind::NestedLoop { outer, inner } => {
                let outer_e = self.materialize(*outer);
                let inner_e = self.materialize(*inner);
                let order = outer_e.order.clone();
                PlanExpr {
                    node: PlanNode::NestedLoop {
                        outer: Box::new(outer_e),
                        inner: Box::new(inner_e),
                    },
                    cost: n.cost,
                    rows: n.rows,
                    order,
                }
            }
            NodeKind::Merge { outer, inner, outer_key, inner_key, residual } => {
                let outer_e = self.materialize(*outer);
                let inner_e = self.materialize(*inner);
                let order = outer_e.order.clone();
                PlanExpr {
                    node: PlanNode::Merge {
                        outer: Box::new(outer_e),
                        inner: Box::new(inner_e),
                        outer_key: *outer_key,
                        inner_key: *inner_key,
                        residual: residual.clone(),
                    },
                    cost: n.cost,
                    rows: n.rows,
                    order,
                }
            }
            NodeKind::Sort { input, keys, sorted_prefix } => PlanExpr {
                node: PlanNode::Sort {
                    input: Box::new(self.materialize(*input)),
                    keys: keys.clone(),
                    sorted_prefix: *sorted_prefix,
                },
                cost: n.cost,
                rows: n.rows,
                order: keys.clone(),
            },
        }
    }

    /// Copy a surviving scratch subtree into the main arena, returning
    /// its committed id. Ids below `base` already live in the main arena
    /// and are returned as-is (memoized outers); scratch-internal edges
    /// are remapped through `remap`, keyed by `(item, scratch id)` so
    /// slots of one subset that alias the same scratch node commit to the
    /// same main node while distinct items' id spaces stay separate.
    pub fn commit(
        &mut self,
        scratch: &[ArenaNode],
        base: NodeId,
        item: usize,
        id: NodeId,
        remap: &mut HashMap<(usize, NodeId), NodeId>,
    ) -> NodeId {
        if id < base {
            return id;
        }
        if let Some(&mapped) = remap.get(&(item, id)) {
            return mapped;
        }
        let mut node = scratch[(id - base) as usize].clone();
        match &mut node.kind {
            NodeKind::Scan { .. } => {}
            NodeKind::NestedLoop { outer, inner } | NodeKind::Merge { outer, inner, .. } => {
                *outer = self.commit(scratch, base, item, *outer, remap);
                *inner = self.commit(scratch, base, item, *inner, remap);
            }
            NodeKind::Sort { input, .. } => {
                *input = self.commit(scratch, base, item, *input, remap);
            }
        }
        let committed = dense_id(self.nodes.len());
        self.nodes.push(node);
        remap.insert((item, id), committed);
        committed
    }
}

/// A view of the frozen main arena plus a private scratch tail, used
/// while generating candidates for one work item (or, with an empty
/// main, for the oracle paths that append wholesale).
pub struct WorkArena<'a> {
    main: &'a [ArenaNode],
    base: NodeId,
    pub local: Vec<ArenaNode>,
}

impl<'a> WorkArena<'a> {
    pub fn new(main: &'a [ArenaNode]) -> Self {
        let base = dense_id(main.len());
        WorkArena { main, base, local: Vec::new() }
    }

    pub fn base(&self) -> NodeId {
        self.base
    }

    pub fn node(&self, id: NodeId) -> &ArenaNode {
        if id < self.base {
            &self.main[id as usize]
        } else {
            &self.local[(id - self.base) as usize]
        }
    }

    pub fn push(&mut self, node: ArenaNode) -> NodeId {
        let id = self.base + dense_id(self.local.len());
        self.local.push(node);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Access;

    fn scan_node(table: usize, pages: f64) -> ArenaNode {
        ArenaNode {
            kind: NodeKind::Scan {
                scan: ScanPlan { table, access: Access::Segment, sargs: vec![], residual: vec![] },
                order: vec![],
            },
            cost: Cost::new(pages, 0.0),
            rows: 1.0,
            key: 0,
            count: 1,
        }
    }

    #[test]
    fn materialize_rebuilds_nested_tree() {
        let mut arena = PlanArena::default();
        arena.nodes.push(scan_node(0, 10.0));
        arena.nodes.push(scan_node(1, 3.0));
        arena.nodes.push(ArenaNode {
            kind: NodeKind::NestedLoop { outer: 0, inner: 1 },
            cost: Cost::new(13.0, 0.0),
            rows: 5.0,
            key: 0,
            count: 3,
        });
        let p = arena.materialize(2);
        assert_eq!(p.cost, Cost::new(13.0, 0.0));
        assert_eq!(p.rows, 5.0);
        assert_eq!(p.node_count(), 3);
        let PlanNode::NestedLoop { outer, inner } = &p.node else { panic!() };
        assert_eq!(outer.cost.pages, 10.0);
        assert_eq!(inner.cost.pages, 3.0);
    }

    #[test]
    fn commit_remaps_scratch_and_preserves_aliasing() {
        let mut arena = PlanArena::default();
        arena.nodes.push(scan_node(0, 10.0)); // committed outer, id 0
        let base = 1;
        // Scratch: a scan (id 1) and a join over (main 0, scratch 1) at id 2.
        let scratch = vec![
            scan_node(1, 3.0),
            ArenaNode {
                kind: NodeKind::NestedLoop { outer: 0, inner: 1 },
                cost: Cost::new(13.0, 0.0),
                rows: 5.0,
                key: 0,
                count: 3,
            },
        ];
        let mut remap = HashMap::new();
        let a = arena.commit(&scratch, base, 0, 2, &mut remap);
        let b = arena.commit(&scratch, base, 0, 2, &mut remap);
        assert_eq!(a, b, "same scratch id commits once");
        assert_eq!(arena.len(), 3);
        let NodeKind::NestedLoop { outer, inner } = &arena.node(a).kind else { panic!() };
        assert_eq!(*outer, 0, "main-arena child kept as-is");
        assert!(*inner >= base, "scratch child copied into main");
        // A different item's identical scratch id commits separately.
        let c = arena.commit(&scratch, base, 1, 2, &mut remap);
        assert_ne!(a, c);
    }

    #[test]
    fn work_arena_two_tier_addressing() {
        let main = vec![scan_node(0, 1.0)];
        let mut wa = WorkArena::new(&main);
        assert_eq!(wa.base(), 1);
        let id = wa.push(scan_node(1, 2.0));
        assert_eq!(id, 1);
        assert_eq!(wa.node(0).cost.pages, 1.0);
        assert_eq!(wa.node(1).cost.pages, 2.0);
    }
}
