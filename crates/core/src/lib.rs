//! # sysr-core — access path selection (the paper's contribution)
//!
//! This crate is the System R OPTIMIZER of Selinger et al., SIGMOD 1979:
//! given a parsed query block, it chooses the plan that minimizes
//!
//! ```text
//! COST = PAGE FETCHES + W * (RSI CALLS)
//! ```
//!
//! The pieces map onto the paper's sections:
//!
//! | module | paper |
//! |---|---|
//! | [`bind`] | §2 — catalog lookup, semantic checking, query-block structure |
//! | [`query`] | §2/§4 — bound query blocks, boolean factors |
//! | [`selectivity`] | §4, **Table 1** — selectivity factors F |
//! | [`cost`] | §4, **Table 2** — single-relation cost formulas |
//! | [`access`] | §4 — access paths for single relations, matching indexes |
//! | [`order`] | §4/§5 — interesting orders, order equivalence classes |
//! | [`join`] | §5 — nested-loop and merging-scans join costs, C-sort |
//! | [`enumerate`] | §5 — dynamic-programming search over join orders with the Cartesian-product-deferral heuristic |
//! | [`plan`] | §2 — the chosen execution plan (our ASL analog) |
//! | [`nested`] | §6 — subquery classification and planning |
//!
//! The entry point is [`Optimizer::optimize`], which runs binder →
//! analysis → enumeration and returns a [`plan::QueryPlan`] ready for
//! `sysr-executor`.

pub mod access;
pub mod analyze;
pub mod arena;
pub mod bind;
pub mod cost;
pub mod enumerate;
pub mod intern;
pub mod join;
pub mod nested;
pub mod num;
pub mod order;
pub mod plan;
pub mod query;
pub mod selectivity;

mod bitset;

pub use analyze::NodeMeasurement;
pub use bind::{bind_select, BindError};
pub use bitset::TableSet;
pub use cost::{Cost, CostModel};
pub use enumerate::{
    EnumerationStats, Enumerator, SearchTrace, SubsetReport, SubsetTrace, TraceEntry,
};
pub use num::{card_f64, dense_id, len_f64, pages_ceil, F64_EXACT_MAX};
pub use order::{OrderInfo, OrderKey};
pub use plan::{Access, IndexRange, PlanExpr, PlanNode, QueryPlan, SargAtom, SargFactor, ScanPlan};
pub use query::{
    AggCall, BExpr, BoundQuery, BoundTable, ColId, Factor, Operand, SExpr, SubqueryDef,
};
pub use selectivity::{estimate_qcard, Selectivity};

use sysr_catalog::Catalog;
use sysr_sql::SelectStmt;

/// Tunables for the optimizer. `w` is the paper's "adjustable weighting
/// factor between I/O and CPU"; `buffer_pages` feeds Table 2's "if this
/// number fits in the System R buffer" variants.
#[derive(Debug, Clone, Copy)]
pub struct OptimizerConfig {
    /// Weight of one RSI call relative to one page fetch.
    pub w: f64,
    /// Buffer pool size in pages.
    pub buffer_pages: usize,
    /// Apply the join-order heuristic that defers Cartesian products
    /// (paper §5). Disabled only by the ablation experiments.
    pub defer_cartesian: bool,
    /// Keep the cheapest plan per interesting-order equivalence class
    /// (paper §4/§5). Disabled only by the ablation experiments, which
    /// then keep a single cheapest plan per subset.
    pub interesting_orders: bool,
    /// Allow index-only scans when an index key covers every column the
    /// query needs from a relation. OFF by default: System R's leaves
    /// held only (key, TID) pairs and the paper costs every index access
    /// with a data-page fetch; enabling this is the natural extension.
    pub index_only_scans: bool,
    /// Worker threads for the join-order search. Each DP level's
    /// (subset, extension) work items are solved concurrently against the
    /// frozen lower-level memo and merged deterministically, so any value
    /// produces bit-identical plans, costs, and traces; `1` (the default)
    /// runs fully inline with no thread spawns.
    pub threads: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            // System R spent most CPU in the RSS; a tuple retrieval is far
            // cheaper than a page I/O, so W is small.
            w: 0.02,
            buffer_pages: 64,
            defer_cartesian: true,
            interesting_orders: true,
            index_only_scans: false,
            threads: 1,
        }
    }
}

/// The access path selector. Borrow a catalog, feed it parsed SELECTs.
pub struct Optimizer<'a> {
    pub catalog: &'a Catalog,
    pub config: OptimizerConfig,
}

impl<'a> Optimizer<'a> {
    pub fn new(catalog: &'a Catalog) -> Self {
        Optimizer { catalog, config: OptimizerConfig::default() }
    }

    pub fn with_config(catalog: &'a Catalog, config: OptimizerConfig) -> Self {
        Optimizer { catalog, config }
    }

    /// Choose the minimum-cost plan for a SELECT statement: bind, analyze,
    /// enumerate, and assemble the final [`QueryPlan`] (including plans for
    /// every nested query block).
    pub fn optimize(&self, stmt: &SelectStmt) -> Result<QueryPlan, BindError> {
        let bound = bind_select(self.catalog, stmt)?;
        Ok(self.optimize_bound(&bound))
    }

    /// Plan an already-bound query (used recursively for subqueries).
    pub fn optimize_bound(&self, bound: &BoundQuery) -> QueryPlan {
        nested::plan_query(self.catalog, &self.config, bound)
    }

    /// Like [`Optimizer::optimize`], additionally collecting the
    /// enumerator's [`SearchTrace`] for every query block (root first).
    pub fn optimize_traced(
        &self,
        stmt: &SelectStmt,
    ) -> Result<(QueryPlan, Vec<(String, SearchTrace)>), BindError> {
        let bound = bind_select(self.catalog, stmt)?;
        Ok(nested::plan_query_traced(self.catalog, &self.config, &bound))
    }
}
