//! Order-key interning for the join-order search.
//!
//! The DP's solution slots are keyed by [`OrderKey`] — a small `Vec` of
//! equivalence-class ids. Hashing and cloning those vectors in the hot
//! loop is pure churn: the universe of keys a search can ever produce is
//! finite and known up front (the empty key, each index's key-column
//! order, each join-column class as a one-element key, and the block's
//! required order — joins inherit the outer's order verbatim and sorts
//! produce single-class or required orders, so the set is closed under
//! plan composition). [`KeyInterner`] assigns each key a dense integer id
//! at enumerator construction, and the search then works exclusively with
//! ids: solution stores become flat arrays indexed by [`KeyId`], and the
//! per-candidate "which slot does this plan compete for" question is an
//! integer copy instead of a `Vec` clone.
//!
//! The interner is frozen before the search starts, so worker threads can
//! share it by `&` with no locking.

use crate::num::dense_id;
use crate::order::{OrderInfo, OrderKey};
use std::collections::HashMap;

/// Dense id of an interned [`OrderKey`].
pub type KeyId = u32;

/// The id of the empty key ("unordered / cheapest overall") — always 0.
pub const EMPTY_KEY: KeyId = 0;

/// Frozen bidirectional map `OrderKey ↔ KeyId`, plus per-key lookup
/// tables the search consults per candidate. Cloneable so a search
/// outcome can carry the interner that decodes its slot ids.
#[derive(Debug, Clone)]
pub struct KeyInterner {
    keys: Vec<OrderKey>,
    ids: HashMap<OrderKey, KeyId>,
    /// Per key id: does the key satisfy the block's required order?
    satisfies_required: Vec<bool>,
    /// Per key id: how many leading required-order classes the key
    /// already delivers (the partial-sort prefix).
    required_prefix: Vec<usize>,
    /// Per key id: the leading equivalence class, if any.
    head: Vec<Option<usize>>,
}

impl KeyInterner {
    /// Start an interner with the empty key pre-interned at id 0.
    pub fn new() -> Self {
        let empty = OrderKey::new();
        let mut ids = HashMap::new();
        ids.insert(empty.clone(), EMPTY_KEY);
        KeyInterner {
            keys: vec![empty],
            ids,
            satisfies_required: Vec::new(),
            required_prefix: Vec::new(),
            head: Vec::new(),
        }
    }

    /// Intern a key, returning its dense id.
    pub fn intern(&mut self, key: OrderKey) -> KeyId {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = dense_id(self.keys.len());
        self.ids.insert(key.clone(), id);
        self.keys.push(key);
        id
    }

    /// Precompute the per-key lookup tables against the block's order
    /// info. Must be called once, after the last `intern`.
    pub fn freeze(&mut self, orders: &OrderInfo) {
        self.satisfies_required = self.keys.iter().map(|k| orders.satisfies_required(k)).collect();
        self.required_prefix =
            self.keys.iter().map(|k| orders.common_prefix_with_required(k)).collect();
        self.head = self.keys.iter().map(|k| k.first().copied()).collect();
    }

    /// The key for an id. Ids are dense integers this interner issued, so
    /// a lookup can only miss on a foreign id; that decodes to the empty
    /// key (= "no usable order") rather than panicking.
    pub fn get(&self, id: KeyId) -> &OrderKey {
        static EMPTY: OrderKey = OrderKey::new();
        self.keys.get(id as usize).unwrap_or(&EMPTY)
    }

    /// Number of interned keys (= solution slots per subset).
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// An interner always holds at least the empty key.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the key satisfies the block's required order (frozen).
    /// A foreign id — or a query before [`KeyInterner::freeze`] — answers
    /// `false`: the conservative direction, which at worst makes the
    /// search add a redundant sort, never claim an order it cannot prove.
    pub fn satisfies_required(&self, id: KeyId) -> bool {
        self.satisfies_required.get(id as usize).copied().unwrap_or(false)
    }

    /// How many leading classes of the block's required order the key
    /// delivers (frozen) — the partial-sort prefix. A foreign id, or a
    /// query before [`KeyInterner::freeze`], answers `0`: the
    /// conservative direction (a full sort is always correct).
    pub fn required_prefix(&self, id: KeyId) -> usize {
        self.required_prefix.get(id as usize).copied().unwrap_or(0)
    }

    /// Whether the key's leading class is the class of `col` — the merge
    /// join "already ordered on the join column" test (frozen). As with
    /// [`KeyInterner::satisfies_required`], an unknown id answers `false`.
    pub fn leads_with(&self, id: KeyId, class_of_col: Option<usize>) -> bool {
        match (self.head.get(id as usize).copied().flatten(), class_of_col) {
            (Some(k), Some(c)) => k == c,
            _ => false,
        }
    }
}

impl Default for KeyInterner {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{BExpr, BoundQuery, ColId, Factor, SExpr};
    use sysr_rss::CompareOp;

    fn query_with(factors: Vec<Factor>, order_by: Vec<ColId>) -> BoundQuery {
        BoundQuery {
            tables: vec![],
            factors,
            select: vec![],
            distinct: false,
            group_by: vec![],
            order_by: order_by.into_iter().map(|c| (c, false)).collect(),
            subqueries: vec![],
            aggregated: false,
        }
    }

    fn equijoin_factor(a: ColId, b: ColId) -> Factor {
        let expr = BExpr::Cmp { op: CompareOp::Eq, left: SExpr::Col(a), right: SExpr::Col(b) };
        let tables = expr.local_tables();
        Factor { expr, tables, equijoin: Some((a, b)) }
    }

    #[test]
    fn empty_key_is_id_zero_and_dedup_works() {
        let mut i = KeyInterner::new();
        assert_eq!(i.intern(OrderKey::new()), EMPTY_KEY);
        let a = i.intern(vec![1]);
        let b = i.intern(vec![1, 2]);
        assert_eq!(i.intern(vec![1]), a);
        assert_ne!(a, b);
        assert_eq!(i.get(b), &vec![1, 2]);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn frozen_tables_match_order_info() {
        let a = ColId::new(0, 1);
        let b = ColId::new(1, 0);
        let q = query_with(vec![equijoin_factor(a, b)], vec![a]);
        let orders = OrderInfo::build(&q);
        let cls = orders.class_of(a).expect("join column has a class");
        let mut i = KeyInterner::new();
        let one = i.intern(vec![cls]);
        i.freeze(&orders);
        assert!(i.satisfies_required(one));
        assert!(!i.satisfies_required(EMPTY_KEY));
        assert!(i.leads_with(one, Some(cls)));
        assert!(!i.leads_with(one, Some(cls + 1)));
        assert!(!i.leads_with(EMPTY_KEY, Some(cls)));
        assert!(!i.leads_with(one, None));
    }
}
