//! Small bitsets over the FROM-list tables of one query block.

use std::fmt;

/// A set of table positions (0-based indexes into the FROM list). The DP
/// join search is keyed on these; 64 tables per block is far beyond the
/// paper's 8-way joins.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TableSet(pub u64);

impl TableSet {
    pub const EMPTY: TableSet = TableSet(0);

    pub fn single(table: usize) -> Self {
        assert!(table < 64, "at most 64 tables per query block");
        TableSet(1 << table)
    }

    /// All tables `0..n`.
    pub fn full(n: usize) -> Self {
        assert!(n <= 64);
        if n == 64 {
            TableSet(u64::MAX)
        } else {
            TableSet((1u64 << n) - 1)
        }
    }

    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    pub fn contains(self, table: usize) -> bool {
        table < 64 && self.0 & (1 << table) != 0
    }

    pub fn insert(&mut self, table: usize) {
        self.0 |= TableSet::single(table).0;
    }

    pub fn union(self, other: TableSet) -> TableSet {
        TableSet(self.0 | other.0)
    }

    pub fn intersect(self, other: TableSet) -> TableSet {
        TableSet(self.0 & other.0)
    }

    pub fn minus(self, other: TableSet) -> TableSet {
        TableSet(self.0 & !other.0)
    }

    pub fn is_subset_of(self, other: TableSet) -> bool {
        self.0 & !other.0 == 0
    }

    pub fn intersects(self, other: TableSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterate member table positions in ascending order.
    pub fn iter(self) -> impl Iterator<Item = usize> {
        let mut bits = self.0;
        std::iter::from_fn(move || {
            if bits == 0 {
                None
            } else {
                let t = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(t)
            }
        })
    }

    /// Enumerate every subset of `TableSet::full(n)` with exactly `size`
    /// members, in ascending bit-pattern order (the classic subset-DP
    /// order: all subsets of size k are produced before size k+1 is
    /// built). `size == 0` yields nothing.
    pub fn subsets_of_size(n: usize, size: usize) -> impl Iterator<Item = TableSet> {
        let full = TableSet::full(n).0;
        let mut cur = if size == 0 || size > n { None } else { Some((1u64 << size) - 1) };
        std::iter::from_fn(move || {
            let c = cur?;
            if c > full {
                cur = None;
                return None;
            }
            // Advance to the next same-popcount pattern (Gosper's hack).
            let lowest = c & c.wrapping_neg();
            let ripple = c.wrapping_add(lowest);
            cur = if ripple == 0 { None } else { Some(ripple | (((c ^ ripple) >> 2) / lowest)) };
            Some(TableSet(c))
        })
    }
}

impl fmt::Debug for TableSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<usize> for TableSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut s = TableSet::EMPTY;
        for t in iter {
            s.insert(t);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = TableSet::EMPTY;
        s.insert(0);
        s.insert(3);
        assert!(s.contains(0) && s.contains(3) && !s.contains(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 3]);
        assert!(TableSet::single(3).is_subset_of(s));
        assert!(!s.is_subset_of(TableSet::single(3)));
        assert_eq!(s.minus(TableSet::single(3)), TableSet::single(0));
    }

    #[test]
    fn full_sets() {
        assert_eq!(TableSet::full(3).iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(TableSet::full(0), TableSet::EMPTY);
    }

    #[test]
    fn subsets_of_size_counts() {
        // C(5, k)
        for (k, expect) in [(1, 5), (2, 10), (3, 10), (4, 5), (5, 1)] {
            assert_eq!(TableSet::subsets_of_size(5, k).count(), expect, "k={k}");
        }
        // Every emitted subset has the right size and stays in range.
        for s in TableSet::subsets_of_size(6, 3) {
            assert_eq!(s.len(), 3);
            assert!(s.is_subset_of(TableSet::full(6)));
        }
    }

    #[test]
    fn subsets_cover_everything() {
        let mut seen = std::collections::HashSet::new();
        for k in 1..=4 {
            for s in TableSet::subsets_of_size(4, k) {
                seen.insert(s.0);
            }
        }
        assert_eq!(seen.len(), 15, "2^4 - 1 non-empty subsets");
    }
}
