//! Checked numeric lifts for the cost algebra.
//!
//! Table 1 and Table 2 arithmetic runs in `f64`, but the catalog hands us
//! integer cardinalities (`u64` NCARD/ICARD/TCARD) and the arena hands us
//! `usize` lengths. A raw `as f64` silently loses precision above 2^53 and
//! a raw `as u32`/`as usize` silently truncates; every such lift in the
//! numeric core now goes through one of these helpers, which saturate at
//! the exactly-representable boundary instead. The audit crate's
//! cast-soundness interval analysis proves the casts *inside* this module
//! (guard narrowing for [`card_f64`], `.min()` bounding for [`dense_id`],
//! `.clamp()` bounding for [`pages_ceil`]), so no `audit:allow` markers
//! are needed here or at any call site.

/// Largest integer such that every integer in `[0, F64_EXACT_MAX]` is
/// exactly representable as an `f64` (2^53; the mantissa is 52 bits plus
/// the implicit leading one).
pub const F64_EXACT_MAX: u64 = 1 << 53;

/// Lift a catalog cardinality into cost arithmetic. Exact for every value
/// a real catalog produces; saturates at 2^53 beyond that instead of
/// silently rounding. `const` so statistics-derived tunables (e.g. the
/// sort-run threshold) can be computed at compile time.
pub const fn card_f64(n: u64) -> f64 {
    if n > F64_EXACT_MAX {
        F64_EXACT_MAX as f64
    } else {
        n as f64
    }
}

/// Lift a container length (`usize`) into cost arithmetic; same
/// saturation contract as [`card_f64`].
pub fn len_f64(n: usize) -> f64 {
    card_f64(n as u64)
}

/// Round a fractional page count up to a whole number of pages, as an
/// integer. NaN maps to 0, negatives to 0, and anything above 2^53
/// saturates, so the result always round-trips exactly through
/// [`card_f64`].
pub fn pages_ceil(x: f64) -> u64 {
    x.ceil().clamp(0.0, 9_007_199_254_740_992.0) as u64
}

/// Narrow a dense arena/intern index to the `u32` id space. Debug builds
/// assert the index fits; release builds saturate rather than truncate,
/// which keeps the id in-range (the arenas cap well below 2^32 entries
/// in practice, so saturation is unreachable).
pub fn dense_id(n: usize) -> u32 {
    debug_assert!(n <= u32::MAX as usize, "dense id space overflow: {n}");
    n.min(u32::MAX as usize) as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn card_is_exact_below_mantissa_and_saturates_above() {
        assert_eq!(card_f64(0), 0.0);
        assert_eq!(card_f64(10_000), 10_000.0);
        assert_eq!(card_f64(F64_EXACT_MAX), 9_007_199_254_740_992.0);
        assert_eq!(card_f64(F64_EXACT_MAX + 1), 9_007_199_254_740_992.0);
        assert_eq!(card_f64(u64::MAX), 9_007_199_254_740_992.0);
    }

    #[test]
    fn len_matches_card() {
        assert_eq!(len_f64(0), 0.0);
        assert_eq!(len_f64(1024), 1024.0);
    }

    #[test]
    fn pages_ceil_rounds_up_at_the_fractional_boundary() {
        // One byte over an exact page boundary must cost a whole new page.
        assert_eq!(pages_ceil(1.0), 1);
        assert_eq!(pages_ceil(1.000001), 2);
        assert_eq!(pages_ceil(0.0), 0);
        assert_eq!(pages_ceil(0.25), 1);
        assert_eq!(pages_ceil(12.99), 13);
    }

    #[test]
    fn pages_ceil_is_total_on_junk_input() {
        assert_eq!(pages_ceil(f64::NAN), 0);
        assert_eq!(pages_ceil(-7.5), 0);
        assert_eq!(pages_ceil(f64::INFINITY), F64_EXACT_MAX);
    }

    #[test]
    fn dense_id_is_identity_in_range() {
        assert_eq!(dense_id(0), 0);
        assert_eq!(dense_id(41), 41);
        assert_eq!(dense_id(u32::MAX as usize), u32::MAX);
    }
}
