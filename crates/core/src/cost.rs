//! The cost model — the paper's cost formula and **Table 2**.
//!
//! `COST = PAGE FETCHES + W * (RSI CALLS)`: "a weighted measure of I/O
//! (pages fetched) and CPU utilization (instructions executed)", with the
//! number of RSI calls standing in for CPU because "most of System R's CPU
//! time is spent in the RSS" (§4).
//!
//! [`Cost`] keeps the two components separate so EXPLAIN can show them and
//! experiments can compare against the executor's measured [`IoStats`];
//! comparison applies the weighting factor `W`.
//!
//! [`CostModel`] implements each situation of Table 2, including the
//! alternative formulas "depending on whether the set of tuples retrieved
//! will fit entirely in the RSS buffer pool".

use crate::num::{card_f64, len_f64, pages_ceil};
use std::fmt;
use std::ops::{Add, AddAssign};
use sysr_rss::{IoStats, MAX_BATCH, PAGE_HEADER_SIZE, PAGE_SIZE};

/// A predicted cost: expected page fetches plus expected RSI calls.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    pub pages: f64,
    pub rsi: f64,
}

impl Cost {
    pub const ZERO: Cost = Cost { pages: 0.0, rsi: 0.0 };

    pub fn new(pages: f64, rsi: f64) -> Self {
        let c = Cost { pages, rsi };
        debug_assert!(c.is_finite(), "non-finite cost constructed: {pages} pages, {rsi} rsi");
        c
    }

    /// Both components are finite (neither NaN nor infinite). The DP's
    /// pruning comparisons are only sound over finite costs — a NaN
    /// compares false against everything and silently survives every
    /// `min`, so arithmetic below asserts this in debug builds and the
    /// audit crate re-checks it on every emitted plan.
    pub fn is_finite(&self) -> bool {
        self.pages.is_finite() && self.rsi.is_finite()
    }

    /// The scalar cost under weighting factor `w`.
    pub fn total(&self, w: f64) -> f64 {
        debug_assert!(self.is_finite(), "total() on non-finite cost {self}");
        self.pages + w * self.rsi
    }

    /// Cost of repeating this `n` times (the `N * C-inner` term of the join
    /// formulas).
    pub fn times(&self, n: f64) -> Cost {
        debug_assert!(n.is_finite() && n >= 0.0, "cost repeated {n} times");
        let c = Cost { pages: self.pages * n, rsi: self.rsi * n };
        debug_assert!(c.is_finite(), "times({n}) overflowed: {self}");
        c
    }

    /// The cost actually measured by the executor, for
    /// predicted-vs-measured comparisons.
    pub fn from_io(io: &IoStats) -> Cost {
        Cost { pages: card_f64(io.page_fetches()), rsi: card_f64(io.rsi_calls) }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        let c = Cost { pages: self.pages + rhs.pages, rsi: self.rsi + rhs.rsi };
        debug_assert!(c.is_finite(), "cost sum went non-finite: {self} + {rhs}");
        c
    }
}

impl AddAssign for Cost {
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} pages + W\u{b7}{:.1} rsi", self.pages, self.rsi)
    }
}

/// Usable bytes per temp-list page, mirroring [`sysr_rss::TempList`].
const TEMP_PAGE_BYTES: f64 = (PAGE_SIZE - PAGE_HEADER_SIZE) as f64;

/// Cardenas' approximation of the number of **distinct pages** touched
/// when `tuples` random tuples are fetched from a relation spread over
/// `pages` pages: `pages * (1 - (1 - 1/pages)^tuples)`. Approaches
/// `tuples` when sparse and saturates at `pages`.
pub fn distinct_pages(tuples: f64, pages: f64) -> f64 {
    if pages <= 1.0 {
        return pages.clamp(0.0, 1.0) * if tuples > 0.0 { 1.0 } else { 0.0 };
    }
    if tuples <= 0.0 {
        return 0.0;
    }
    pages * (1.0 - (1.0 - 1.0 / pages).powf(tuples))
}

/// Predicted `TEMPPAGES`: pages needed to hold `rows` tuples of `width`
/// bytes each. The fractional byte count rounds up through the checked
/// [`pages_ceil`] lift, so the estimate is always a whole page count
/// (one byte past a page boundary costs a full extra page) and survives
/// junk inputs — NaN widths behave like empty inputs instead of
/// propagating into the DP's pruning comparisons.
pub fn temp_pages(rows: f64, width: f64) -> f64 {
    if rows <= 0.0 {
        return 0.0;
    }
    card_f64(pages_ceil(rows * width.max(1.0) / TEMP_PAGE_BYTES)).max(1.0)
}

/// Rows the executor's segmented sort orders in memory without spilling
/// — derived from the shared RSI batch size ([`sysr_rss::MAX_BATCH`]),
/// which is exactly the run size `exec_sort` holds in memory before it
/// spills a run to a temp list. Deriving (rather than restating) the
/// constant keeps the cost model and the executor moving together.
pub const SORT_RUN_MEMORY_ROWS: f64 = card_f64(MAX_BATCH as u64);

/// Extra cost of a partial (run-segmented) sort over its input, plus the
/// predicted temp pages per spilled run × run count.
///
/// The input arrives grouped into `run_count` runs by an already-ordered
/// prefix of the sort key, so only tuples *within* a run need ordering:
///
/// * **CPU** — the whole-input sort's comparison work is `N·log₂N`; per
///   run it is `Σ nᵢ·log₂nᵢ ≈ N·log₂(N/runs)`. The full sort charges one
///   RSI-equivalent per tuple ([`CostModel::sort`] read-back); the
///   partial sort scales that per-tuple charge by the comparison ratio
///   `log₂(N/runs) / log₂(N)`, which also stands in for the read-back
///   that spilled runs still pay.
/// * **I/O** — runs that fit the executor's in-memory batch
///   ([`SORT_RUN_MEMORY_ROWS`]) spill nothing; oversized runs write and
///   read back run-sized temp lists instead of whole-input `TEMPPAGES`.
pub fn partial_sort_delta(rows: f64, width: f64, run_count: f64) -> (Cost, f64) {
    if rows <= 0.0 {
        return (Cost::ZERO, 0.0);
    }
    let runs = run_count.clamp(1.0, rows);
    let run_rows = rows / runs;
    let cpu = rows * (run_rows.max(2.0).log2() / rows.max(2.0).log2()).min(1.0);
    let tp =
        if run_rows <= SORT_RUN_MEMORY_ROWS { 0.0 } else { runs * temp_pages(run_rows, width) };
    (Cost::new(2.0 * tp, cpu), tp)
}

/// Table 2 cost formulas.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// The adjustable weighting factor between I/O and CPU.
    pub w: f64,
    /// Effective buffer pool pages per user, for the "fits in the buffer"
    /// variants.
    pub buffer_pages: f64,
}

impl CostModel {
    pub fn new(w: f64, buffer_pages: usize) -> Self {
        CostModel { w, buffer_pages: len_f64(buffer_pages) }
    }

    pub fn total(&self, c: Cost) -> f64 {
        c.total(self.w)
    }

    /// Strictly cheaper under this model's W.
    pub fn better(&self, a: Cost, b: Cost) -> bool {
        self.total(a) < self.total(b)
    }

    /// Table 2, "unique index matching an equal predicate": `1 + 1 + W`.
    /// One index probe page, one data page, one tuple.
    pub fn unique_index_eq(&self) -> Cost {
        Cost { pages: 2.0, rsi: 1.0 }
    }

    /// Table 2, "clustered index I matching one or more boolean factors":
    /// `F(preds) * (NINDX(I) + TCARD) + W * RSICARD`.
    pub fn clustered_matching(&self, f_preds: f64, nindx: f64, tcard: f64, rsicard: f64) -> Cost {
        if mutant::cost_monotone_armed() {
            // Seeded fault for the `--mutant cost-monotone` drill: page cost
            // dips back down past TCARD = 500, violating "cost non-decreasing
            // in the relation cardinality". Dead code unless the cost-props
            // harness arms it.
            return Cost { pages: f_preds * (nindx + (tcard - 500.0).abs()), rsi: rsicard };
        }
        Cost { pages: f_preds * (nindx + tcard), rsi: rsicard }
    }

    /// Table 2, "non-clustered index I matching one or more boolean
    /// factors": `F(preds) * (NINDX(I) + NCARD) + W * RSICARD`, **or** the
    /// cheaper buffered variant "if this number fits in the System R
    /// buffer".
    ///
    /// The paper writes the buffered data-page term as `F * TCARD`, which
    /// implicitly assumes the matching tuples are co-located on an `F`
    /// fraction of the pages. For non-clustered indexes the matches are
    /// scattered, so we estimate the distinct pages touched with the
    /// Cardenas/Yao approximation instead (see
    /// [`distinct_pages`]); [`CostModel::nonclustered_matching_paper`]
    /// keeps the literal 1979 formula for the Table 2 regeneration bench.
    /// DESIGN.md §6 records this as a deliberate refinement: without it
    /// the optimizer systematically underestimates scattered index probes
    /// and loses the §7 optimality experiment that the paper's System R
    /// won.
    pub fn nonclustered_matching(
        &self,
        f_preds: f64,
        nindx: f64,
        ncard: f64,
        tcard: f64,
        rsicard: f64,
    ) -> Cost {
        let small = f_preds * nindx + distinct_pages(f_preds * ncard, tcard);
        let big = f_preds * (nindx + ncard);
        let pages = if small <= self.buffer_pages { small } else { big };
        Cost { pages, rsi: rsicard }
    }

    /// The literal Table 2 formula for the non-clustered matching case,
    /// exactly as published: `F*(NINDX+NCARD)`, or `F*(NINDX+TCARD)` if
    /// that fits in the buffer.
    pub fn nonclustered_matching_paper(
        &self,
        f_preds: f64,
        nindx: f64,
        ncard: f64,
        tcard: f64,
        rsicard: f64,
    ) -> Cost {
        let small = f_preds * (nindx + tcard);
        let big = f_preds * (nindx + ncard);
        let pages = if small <= self.buffer_pages { small } else { big };
        Cost { pages, rsi: rsicard }
    }

    /// Table 2, "clustered index I not matching any boolean factors":
    /// `(NINDX(I) + TCARD) + W * RSICARD`.
    pub fn clustered_nonmatching(&self, nindx: f64, tcard: f64, rsicard: f64) -> Cost {
        Cost { pages: nindx + tcard, rsi: rsicard }
    }

    /// Table 2, "non-clustered index I not matching any boolean factors":
    /// `(NINDX(I) + NCARD) + W * RSICARD`, or `(NINDX(I) + TCARD)` if that
    /// fits in the buffer.
    pub fn nonclustered_nonmatching(
        &self,
        nindx: f64,
        ncard: f64,
        tcard: f64,
        rsicard: f64,
    ) -> Cost {
        let small = nindx + tcard;
        let big = nindx + ncard;
        let pages = if small <= self.buffer_pages { small } else { big };
        Cost { pages, rsi: rsicard }
    }

    /// Table 2, "segment scan": `TCARD/P + W * RSICARD`. `TCARD/P` is every
    /// non-empty page of the segment, whether or not the relation's tuples
    /// are on it.
    pub fn segment_scan(&self, tcard: f64, p: f64, rsicard: f64) -> Cost {
        let pages = if p > 0.0 { tcard / p } else { tcard };
        Cost { pages, rsi: rsicard }
    }

    /// C-sort(path): "the cost of retrieving the data using the specified
    /// access path, sorting the data, ... and putting the results into a
    /// temporary list" (§5). Our executor sorts in memory, so the I/O is
    /// the input cost plus writing TEMPPAGES; the per-tuple CPU of the sort
    /// is charged as one RSI call per tuple inserted into the list.
    pub fn sort(&self, input: Cost, rows: f64, width: f64) -> (Cost, f64) {
        let pages = temp_pages(rows, width);
        (input + Cost { pages, rsi: 0.0 }, pages)
    }

    /// C-partialsort(path): enforce an order whose leading prefix the
    /// input already delivers, grouped into `run_count` runs — see
    /// [`partial_sort_delta`] for the formula. Returns the total cost and
    /// the per-run spill pages × run count.
    pub fn partial_sort(&self, input: Cost, rows: f64, width: f64, run_count: f64) -> (Cost, f64) {
        let (delta, tp) = partial_sort_delta(rows, width, run_count);
        (input + delta, tp)
    }

    /// C-inner(sorted list) = `TEMPPAGES/N + W*RSICARD` — the per-probe
    /// cost of the merging scan against a sorted temporary list, where
    /// RSICARD here is the matching group size per outer tuple.
    pub fn merge_inner_sorted(&self, temppages: f64, n_outer: f64, group_rsi: f64) -> Cost {
        let n = n_outer.max(1.0);
        Cost { pages: temppages / n, rsi: group_rsi }
    }
}

/// Mutation hooks for the audit crate's `--mutant cost-monotone` drill
/// (the PR-7 pattern: the fault ships in-tree but is dead until the
/// verifying harness arms it, proving the verifier would catch a real
/// regression of the same shape).
pub mod mutant {
    use std::sync::atomic::{AtomicBool, Ordering};

    static COST_MONOTONE: AtomicBool = AtomicBool::new(false);

    /// Arm or disarm the non-monotone `clustered_matching` variant. Only
    /// the cost-property verifier calls this; it disarms before returning.
    pub fn arm_cost_monotone(on: bool) {
        COST_MONOTONE.store(on, Ordering::SeqCst);
    }

    pub(super) fn cost_monotone_armed() -> bool {
        COST_MONOTONE.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CostModel {
        CostModel::new(0.1, 50)
    }

    #[test]
    fn total_weights_rsi() {
        let c = Cost::new(10.0, 100.0);
        assert_eq!(c.total(0.1), 20.0);
        assert_eq!(c.total(0.0), 10.0);
    }

    #[test]
    fn add_and_times() {
        let c = Cost::new(1.0, 2.0) + Cost::new(3.0, 4.0);
        assert_eq!(c, Cost::new(4.0, 6.0));
        assert_eq!(Cost::new(1.0, 2.0).times(10.0), Cost::new(10.0, 20.0));
    }

    #[test]
    fn is_finite_detects_nan_and_infinity() {
        assert!(Cost::new(1.0, 2.0).is_finite());
        assert!(Cost::ZERO.is_finite());
        assert!(!Cost { pages: f64::NAN, rsi: 0.0 }.is_finite());
        assert!(!Cost { pages: 0.0, rsi: f64::INFINITY }.is_finite());
        assert!(!Cost { pages: f64::NEG_INFINITY, rsi: 0.0 }.is_finite());
    }

    #[test]
    fn unique_index_is_paper_formula() {
        // 1 + 1 + W
        let m = model();
        let c = m.unique_index_eq();
        assert_eq!(m.total(c), 2.0 + 0.1);
    }

    #[test]
    fn clustered_matching_formula() {
        let m = model();
        // F=0.02, NINDX=20, TCARD=100 → 0.02*120 = 2.4 pages
        let c = m.clustered_matching(0.02, 20.0, 100.0, 200.0);
        assert!((c.pages - 2.4).abs() < 1e-12);
        assert_eq!(c.rsi, 200.0);
    }

    #[test]
    fn nonclustered_buffer_fit_switches_formula() {
        let m = model(); // buffer = 50 pages
                         // Very selective: F=0.001 retrieves 10 of 10000 tuples scattered
                         // over 400 pages → ~10 distinct pages; fits in the buffer.
        let c = m.nonclustered_matching(0.001, 20.0, 10_000.0, 400.0, 10.0);
        assert!(c.pages > 9.0 && c.pages < 11.0, "pages={}", c.pages);
        // Unselective: F=0.5 → the buffered estimate exceeds the pool, so
        // the per-tuple formula applies: 0.5 * (20 + 10000) = 5010.
        let c = m.nonclustered_matching(0.5, 20.0, 10_000.0, 400.0, 5000.0);
        assert!((c.pages - 5010.0).abs() < 1e-12);
    }

    #[test]
    fn paper_variant_keeps_literal_formula() {
        let m = model();
        // The published Table 2 text: F*(NINDX+TCARD) = 0.1*420 = 42 ≤ 50.
        let c = m.nonclustered_matching_paper(0.1, 20.0, 10_000.0, 400.0, 1000.0);
        assert!((c.pages - 42.0).abs() < 1e-12);
        let c = m.nonclustered_matching_paper(0.5, 20.0, 10_000.0, 400.0, 5000.0);
        assert!((c.pages - 5010.0).abs() < 1e-12);
    }

    #[test]
    fn distinct_pages_estimate() {
        // Sparse: ~one page per tuple.
        assert!((distinct_pages(5.0, 10_000.0) - 5.0).abs() < 0.01);
        // Saturating: cannot exceed the page count.
        assert!(distinct_pages(1_000_000.0, 50.0) <= 50.0);
        assert!(distinct_pages(1_000_000.0, 50.0) > 49.9);
        // Edge cases.
        assert_eq!(distinct_pages(0.0, 100.0), 0.0);
        assert_eq!(distinct_pages(10.0, 0.0), 0.0);
        assert_eq!(distinct_pages(3.0, 1.0), 1.0);
        // Monotone in tuples.
        assert!(distinct_pages(100.0, 200.0) < distinct_pages(150.0, 200.0));
    }

    #[test]
    fn clustered_beats_nonclustered_same_stats() {
        let m = CostModel::new(0.1, 1); // tiny buffer: no fit variant
        let cl = m.clustered_matching(0.1, 20.0, 400.0, 1000.0);
        let ncl = m.nonclustered_matching(0.1, 20.0, 10_000.0, 400.0, 1000.0);
        assert!(m.better(cl, ncl));
        let ncl_paper = m.nonclustered_matching_paper(0.1, 20.0, 10_000.0, 400.0, 1000.0);
        assert!(m.better(cl, ncl_paper));
    }

    #[test]
    fn segment_scan_divides_by_p() {
        let m = model();
        let c = m.segment_scan(100.0, 0.5, 500.0);
        assert_eq!(c.pages, 200.0);
        let c = m.segment_scan(100.0, 1.0, 500.0);
        assert_eq!(c.pages, 100.0);
    }

    #[test]
    fn temp_pages_rounds_up() {
        assert_eq!(temp_pages(0.0, 50.0), 0.0);
        assert_eq!(temp_pages(1.0, 50.0), 1.0);
        // 1000 rows * 50B = 50_000B / 4080 = 12.25 → 13.
        assert_eq!(temp_pages(1000.0, 50.0), 13.0);
    }

    #[test]
    fn temp_pages_fractional_page_boundary() {
        // TEMP_PAGE_BYTES = 4096 - 16 = 4080 usable bytes. Exactly one
        // page's worth of rows stays one page; a single extra byte tips
        // over into a second page — the checked pages_ceil path must not
        // round that boundary down.
        assert_eq!(temp_pages(4080.0, 1.0), 1.0);
        assert_eq!(temp_pages(4081.0, 1.0), 2.0);
        assert_eq!(temp_pages(8160.0, 1.0), 2.0);
        assert_eq!(temp_pages(8161.0, 1.0), 3.0);
        // Whatever temp_pages returns is a whole page count.
        for (rows, width) in [(7.0, 3.0), (999.0, 17.0), (0.5, 0.25), (12345.0, 61.0)] {
            let tp = temp_pages(rows, width);
            assert_eq!(tp.fract(), 0.0, "temp_pages({rows},{width}) = {tp} not integral");
        }
        // NaN width behaves like the empty input rather than poisoning
        // the DP with a NaN cost.
        assert_eq!(temp_pages(10.0, f64::NAN), 1.0);
    }

    #[test]
    fn sort_run_threshold_tracks_executor_batch_size() {
        assert_eq!(SORT_RUN_MEMORY_ROWS, MAX_BATCH as f64);
        assert_eq!(SORT_RUN_MEMORY_ROWS, 1024.0);
    }

    #[test]
    fn sort_adds_temp_write() {
        let m = model();
        let (c, pages) = m.sort(Cost::new(10.0, 100.0), 1000.0, 50.0);
        assert_eq!(pages, 13.0);
        assert_eq!(c.pages, 23.0);
        assert_eq!(c.rsi, 100.0);
    }

    #[test]
    fn partial_sort_in_memory_runs_cost_no_temp_pages() {
        // 1000 rows in 10 runs of 100: every run fits in memory, so the
        // delta is pure CPU, discounted by log(run)/log(rows).
        let (delta, tp) = partial_sort_delta(1000.0, 50.0, 10.0);
        assert_eq!(tp, 0.0);
        assert_eq!(delta.pages, 0.0);
        let expected = 1000.0 * (100.0_f64.log2() / 1000.0_f64.log2());
        assert!((delta.rsi - expected).abs() < 1e-9, "rsi={}", delta.rsi);
        assert!(delta.rsi < 1000.0, "partial CPU must undercut the full sort's");
    }

    #[test]
    fn partial_sort_oversized_runs_spill_per_run() {
        // 4000 rows in 2 runs of 2000 (> SORT_RUN_MEMORY_ROWS): each run
        // writes and reads back its own temp pages.
        let (delta, tp) = partial_sort_delta(4000.0, 50.0, 2.0);
        assert_eq!(tp, 2.0 * temp_pages(2000.0, 50.0));
        assert_eq!(delta.pages, 2.0 * tp);
    }

    #[test]
    fn partial_sort_with_one_run_degenerates_to_full_sort() {
        // A single run spans the whole input, so the delta matches the
        // order-enforcement full sort exactly: TEMPPAGES written + read
        // back, one RSI call per tuple (`join::sort_cost`).
        let (delta, tp) = partial_sort_delta(5000.0, 50.0, 1.0);
        assert_eq!(tp, temp_pages(5000.0, 50.0));
        assert_eq!(delta, Cost::new(2.0 * tp, 5000.0));
    }

    #[test]
    fn partial_sort_run_count_clamps_to_rows() {
        // More runs than rows degenerates to singleton runs: nothing to
        // sort, nothing to spill.
        let (delta, tp) = partial_sort_delta(8.0, 50.0, 1000.0);
        assert_eq!(tp, 0.0);
        assert_eq!(delta.pages, 0.0);
        let (zero, _) = partial_sort_delta(0.0, 50.0, 4.0);
        assert_eq!(zero, Cost::ZERO);
    }

    #[test]
    fn merge_inner_sorted_amortizes_pages() {
        let m = model();
        let per_probe = m.merge_inner_sorted(13.0, 100.0, 2.5);
        assert!((per_probe.pages - 0.13).abs() < 1e-12);
        assert_eq!(per_probe.rsi, 2.5);
        // Summed over N outer tuples the page term is TEMPPAGES again.
        let total = per_probe.times(100.0);
        assert!((total.pages - 13.0).abs() < 1e-9);
    }

    #[test]
    fn measured_cost_from_io_stats() {
        let io = IoStats {
            data_page_fetches: 5,
            index_page_fetches: 3,
            temp_page_fetches: 2,
            temp_pages_written: 1,
            buffer_hits: 99,
            rsi_calls: 42,
            ..IoStats::default()
        };
        let c = Cost::from_io(&io);
        assert_eq!(c.pages, 11.0);
        assert_eq!(c.rsi, 42.0);
    }
}
