//! `EXPLAIN ANALYZE` support: plan-node identifiers, per-node runtime
//! measurements, and the predicted-vs-measured report.
//!
//! The optimizer predicts `COST = PAGE FETCHES + W * RSI CALLS` per plan
//! node (Table 2 and the §5 join formulas); the executor measures the same
//! quantities through the counting buffer pool. This module joins the two:
//! every node of a [`QueryPlan`] — including nodes of nested query blocks —
//! gets a stable **pre-order id**, the executor reports a
//! [`NodeMeasurement`] keyed by that id, and
//! [`QueryPlan::explain_analyze`] renders the annotated tree.
//!
//! # Node id scheme
//!
//! Ids are assigned pre-order within one block's plan tree, then block by
//! block: the root block's tree occupies `0..root.node_count()`, followed
//! by each subquery block's full tree in order. For a join node at id `n`,
//! the outer child is `n + 1` and the inner child is
//! `n + 1 + outer.node_count()`; a sort's input is `n + 1`. The executor
//! reproduces the same arithmetic while walking the tree, so no id needs
//! to be stored inside the plan.

use crate::cost::Cost;
use crate::plan::{node_head, PlanExpr, PlanNode, QueryPlan};
use std::collections::HashMap;
use std::fmt::Write as _;
use sysr_catalog::Catalog;
use sysr_rss::IoStats;

/// What the executor measured for one plan node, accumulated over every
/// invocation (a nested-loop inner scan is invoked once per outer row).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeMeasurement {
    /// Times the node was opened.
    pub invocations: u64,
    /// Rows produced, summed over invocations.
    pub rows: u64,
    /// I/O charged to this node alone: the window delta minus whatever was
    /// already charged to nodes nested *within* the window (children,
    /// subqueries evaluated in residual predicates). Summing `io` over all
    /// nodes therefore reproduces the whole-query [`IoStats`] delta.
    pub io: IoStats,
}

impl PlanExpr {
    /// Pre-order id of the outer (or only) child of the node at `id`.
    /// Returns `None` for leaves.
    pub fn outer_child_id(&self, id: usize) -> Option<usize> {
        match &self.node {
            PlanNode::Scan(_) => None,
            PlanNode::NestedLoop { .. } | PlanNode::Merge { .. } | PlanNode::Sort { .. } => {
                Some(id + 1)
            }
        }
    }

    /// Pre-order id of the inner child of the join node at `id`.
    pub fn inner_child_id(&self, id: usize) -> Option<usize> {
        match &self.node {
            PlanNode::NestedLoop { outer, .. } | PlanNode::Merge { outer, .. } => {
                Some(id + 1 + outer.node_count())
            }
            _ => None,
        }
    }
}

impl QueryPlan {
    /// Total node count across this block and all nested blocks.
    pub fn total_nodes(&self) -> usize {
        self.root.node_count() + self.subplans.iter().map(|s| s.total_nodes()).sum::<usize>()
    }

    /// Base id of subquery block `i`, given this block's own base id.
    /// Subquery trees are numbered after the block's own tree, in order.
    pub fn subplan_base(&self, own_base: usize, i: usize) -> usize {
        own_base
            + self.root.node_count()
            + self.subplans.iter().take(i).map(|s| s.total_nodes()).sum::<usize>()
    }

    /// Render the predicted-vs-measured report: the `EXPLAIN` tree with
    /// every node annotated by what the executor actually did.
    pub fn explain_analyze(
        &self,
        catalog: &Catalog,
        measurements: &HashMap<usize, NodeMeasurement>,
        w: f64,
    ) -> String {
        let mut out = String::new();
        self.render_analyze(catalog, measurements, 0, &mut out, 0);
        // Footer: whole-query predicted vs measured totals. Per-node `io`
        // values are disjoint, so their sum is the whole-query delta.
        let mut measured = IoStats::default();
        for m in measurements.values() {
            measured += m.io;
        }
        let _ =
            writeln!(out, "predicted: {} = {:.1} (W={w})", self.predicted, self.predicted.total(w));
        let measured_cost = Cost::from_io(&measured);
        let _ = writeln!(
            out,
            "measured:  {:.1} pages + W\u{b7}{:.1} rsi = {:.1} (W={w})",
            measured_cost.pages,
            measured_cost.rsi,
            measured_cost.total(w),
        );
        let _ = writeln!(out, "measured io: {measured}");
        out
    }

    fn render_analyze(
        &self,
        catalog: &Catalog,
        measurements: &HashMap<usize, NodeMeasurement>,
        base: usize,
        out: &mut String,
        depth: usize,
    ) {
        render_node_analyze(&self.root, self, catalog, measurements, base, out, depth);
        if !self.block_filters.is_empty() {
            let _ =
                writeln!(out, "{}block filters: {:?}", "  ".repeat(depth + 1), self.block_filters);
        }
        for (i, sub) in self.subplans.iter().enumerate() {
            let def = &self.query.subqueries[i];
            let _ = writeln!(
                out,
                "{}subquery #{i} ({}{}):",
                "  ".repeat(depth + 1),
                if def.correlated { "correlated " } else { "" },
                if def.scalar { "scalar" } else { "set" },
            );
            sub.render_analyze(catalog, measurements, self.subplan_base(base, i), out, depth + 2);
        }
    }
}

fn render_node_analyze(
    plan: &PlanExpr,
    block: &QueryPlan,
    catalog: &Catalog,
    measurements: &HashMap<usize, NodeMeasurement>,
    id: usize,
    out: &mut String,
    depth: usize,
) {
    let pad = "  ".repeat(depth);
    let head = node_head(plan, &block.query, catalog);
    let est = format!("(cost={}, rows={:.1})", plan.cost, plan.rows);
    match measurements.get(&id) {
        Some(m) => {
            let _ = writeln!(
                out,
                "{pad}#{id} {head} {est} \
                 [actual rows={} loops={} fetches={} \
                 (data={} index={} temp={}+{}w) rsi={}]",
                m.rows,
                m.invocations,
                m.io.page_fetches(),
                m.io.data_page_fetches,
                m.io.index_page_fetches,
                m.io.temp_page_fetches,
                m.io.temp_pages_written,
                m.io.rsi_calls,
            );
        }
        None => {
            let _ = writeln!(out, "{pad}#{id} {head} {est} [never executed]");
        }
    }
    match &plan.node {
        PlanNode::Scan(_) => {}
        PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
            // Child ids per the pre-order scheme: outer at id+1, inner after
            // the whole outer subtree.
            let outer_id = id + 1;
            let inner_id = id + 1 + outer.node_count();
            render_node_analyze(outer, block, catalog, measurements, outer_id, out, depth + 1);
            render_node_analyze(inner, block, catalog, measurements, inner_id, out, depth + 1);
        }
        PlanNode::Sort { input, .. } => {
            render_node_analyze(input, block, catalog, measurements, id + 1, out, depth + 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::Cost;
    use crate::plan::{Access, ScanPlan};

    fn scan(table: usize) -> PlanExpr {
        PlanExpr {
            node: PlanNode::Scan(ScanPlan {
                table,
                access: Access::Segment,
                sargs: vec![],
                residual: vec![],
            }),
            cost: Cost::new(10.0, 100.0),
            rows: 100.0,
            order: vec![],
        }
    }

    #[test]
    fn preorder_child_ids() {
        // ((0 ⋈ 1) ⋈ sort(2)): ids 0=join, 1=join, 2=scan0, 3=scan1,
        // 4=sort, 5=scan2.
        let lower = PlanExpr {
            node: PlanNode::NestedLoop { outer: Box::new(scan(0)), inner: Box::new(scan(1)) },
            cost: Cost::ZERO,
            rows: 1.0,
            order: vec![],
        };
        let sorted = PlanExpr {
            node: PlanNode::Sort {
                input: Box::new(scan(2)),
                keys: vec![crate::query::ColId::new(2, 0)],
                sorted_prefix: 0,
            },
            cost: Cost::ZERO,
            rows: 1.0,
            order: vec![],
        };
        let top = PlanExpr {
            node: PlanNode::NestedLoop { outer: Box::new(lower), inner: Box::new(sorted) },
            cost: Cost::ZERO,
            rows: 1.0,
            order: vec![],
        };
        assert_eq!(top.node_count(), 6);
        assert_eq!(top.outer_child_id(0), Some(1));
        assert_eq!(top.inner_child_id(0), Some(4));
        let PlanNode::NestedLoop { outer, inner } = &top.node else { unreachable!() };
        assert_eq!(outer.outer_child_id(1), Some(2));
        assert_eq!(outer.inner_child_id(1), Some(3));
        assert_eq!(inner.outer_child_id(4), Some(5));
        assert_eq!(inner.inner_child_id(4), None);
        let PlanNode::Sort { input, .. } = &inner.node else { unreachable!() };
        assert_eq!(input.outer_child_id(5), None);
    }
}
