//! Join plan composition and costs (§5).
//!
//! Two join methods, as in the paper:
//!
//! * **Nested loops** — `C = C-outer(path1) + N * C-inner(path2)`: for each
//!   of the `N` outer tuples, the inner relation is scanned via its access
//!   path, "applying all applicable predicates" — including join predicates
//!   probing an inner index with the outer tuple's value.
//!
//! * **Merging scans** — both inputs arrive in join-column order and are
//!   merged with synchronized group scans. An input is ordered either
//!   because its access path produces that order (an index on the join
//!   column, or a suitably ordered composite) or because it was sorted
//!   into a temporary list (`C-sort`). Our executor buffers the current
//!   inner group in memory, so each inner tuple is read exactly once and
//!   the total cost is `C-outer + C-inner` — the same quantity as the
//!   paper's `C-outer + N * C-inner(contiguous group)` formulation, with
//!   the group re-reads served from memory. The advantage over nested
//!   loops is precisely the paper's: "it is not necessary to scan the
//!   entire inner relation (looking for a match) for each tuple of the
//!   outer relation".
//!
//! `C-sort(path)` "includes the cost of retrieving the data using the
//! specified access path, sorting the data, ... and putting the results
//! into a temporary list" (§5): input cost + TEMPPAGES written; reading
//! the sorted list back during the merge costs TEMPPAGES fetches plus one
//! RSI call per tuple.

use crate::cost::{temp_pages, Cost};
use crate::plan::{PlanExpr, PlanNode};
use crate::query::ColId;

/// Pure nested-loop cost: `C-outer + N * C-inner`, with the inner's page
/// charge capped at `inner_resident_pages` when the inner fits in the
/// buffer pool. This is the single source of truth for the formula — both
/// the [`PlanExpr`] composer below and the enumerator's plan arena call
/// it, so their costs are bit-identical.
pub fn nested_loop_cost(
    outer_cost: Cost,
    outer_rows: f64,
    inner_cost: Cost,
    inner_resident_pages: Option<f64>,
) -> Cost {
    let n = outer_rows.max(0.0);
    let mut inner_total = inner_cost.times(n);
    if let Some(cap) = inner_resident_pages {
        inner_total.pages = inner_total.pages.min(cap);
    }
    outer_cost + inner_total
}

/// Pure sort cost: input + TEMPPAGES written + TEMPPAGES read back + one
/// RSI call per tuple read back.
pub fn sort_cost(input_cost: Cost, rows: f64, width: f64) -> Cost {
    let tp = temp_pages(rows, width);
    input_cost + Cost::new(2.0 * tp, rows)
}

/// Pure partial-sort cost: the input already arrives grouped into
/// `run_count` runs by a satisfied key prefix, so only within-run work
/// remains — see [`crate::cost::partial_sort_delta`].
pub fn partial_sort_cost(input_cost: Cost, rows: f64, width: f64, run_count: f64) -> Cost {
    let (delta, _) = crate::cost::partial_sort_delta(rows, width, run_count);
    input_cost + delta
}

/// Pure merging-scans cost: `C-outer + C-inner` (group re-reads served
/// from the in-memory group buffer).
pub fn merge_cost(outer_cost: Cost, inner_cost: Cost) -> Cost {
    outer_cost + inner_cost
}

/// Compose a nested-loop join: `C-outer + N * C-inner`.
///
/// `inner` is a per-probe scan plan (its `cost` is the cost of one probe,
/// its `rows` the tuples produced per probe). All applicable predicates
/// are already attached to the inner scan, so the node needs no residuals.
///
/// `inner_resident_pages` extends the paper's "fits in the System R
/// buffer" reasoning to repeated probes: when the inner relation's entire
/// access structure (index + data pages) fits in the buffer pool, the
/// probes collectively fetch each page at most once, so the total page
/// cost is capped at that footprint instead of `N × per-probe pages`.
/// Pass `None` when the inner does not fit. RSI calls are CPU and are
/// never capped.
pub fn nested_loop(
    outer: PlanExpr,
    inner: PlanExpr,
    rows_out: f64,
    inner_resident_pages: Option<f64>,
) -> PlanExpr {
    let cost = nested_loop_cost(outer.cost, outer.rows, inner.cost, inner_resident_pages);
    let order = outer.order.clone();
    PlanExpr {
        node: PlanNode::NestedLoop { outer: Box::new(outer), inner: Box::new(inner) },
        cost,
        rows: rows_out,
        order,
    }
}

/// Wrap a plan in a sort into a temporary list ordered by `keys`.
///
/// Cost = input + TEMPPAGES written + TEMPPAGES read back + one RSI call
/// per tuple read back (the merge consumes the list exactly once).
/// `width` is the mean tuple width of the materialized rows.
pub fn sort_plan(input: PlanExpr, keys: Vec<ColId>, width: f64) -> PlanExpr {
    let rows = input.rows;
    let cost = sort_cost(input.cost, rows, width);
    PlanExpr {
        node: PlanNode::Sort { input: Box::new(input), keys: keys.clone(), sorted_prefix: 0 },
        cost,
        rows,
        order: keys,
    }
}

/// Wrap a plan whose order already covers the first `sorted_prefix`
/// columns of `keys` in a partial (run-segmented) sort. `run_count` is
/// the estimated number of distinct prefix groups; the caller must have
/// proved the coverage (the `order-produced` audit invariant re-checks
/// it against the input's produced order).
pub fn partial_sort_plan(
    input: PlanExpr,
    keys: Vec<ColId>,
    sorted_prefix: usize,
    width: f64,
    run_count: f64,
) -> PlanExpr {
    debug_assert!(sorted_prefix > 0 && sorted_prefix <= keys.len());
    let rows = input.rows;
    let cost = partial_sort_cost(input.cost, rows, width, run_count);
    PlanExpr {
        node: PlanNode::Sort { input: Box::new(input), keys: keys.clone(), sorted_prefix },
        cost,
        rows,
        order: keys,
    }
}

/// Compose a merging-scans join of two ordered inputs:
/// `C = C-outer + C-inner` (group re-reads are served from the in-memory
/// group buffer). `residual` factors are evaluated on each composite row.
pub fn merge_join(
    outer: PlanExpr,
    inner: PlanExpr,
    outer_key: ColId,
    inner_key: ColId,
    residual: Vec<usize>,
    rows_out: f64,
) -> PlanExpr {
    let cost = merge_cost(outer.cost, inner.cost);
    let order = outer.order.clone();
    PlanExpr {
        node: PlanNode::Merge {
            outer: Box::new(outer),
            inner: Box::new(inner),
            outer_key,
            inner_key,
            residual,
        },
        cost,
        rows: rows_out,
        order,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Access, ScanPlan};

    fn scan(table: usize, cost: Cost, rows: f64, order: Vec<ColId>) -> PlanExpr {
        PlanExpr {
            node: PlanNode::Scan(ScanPlan {
                table,
                access: Access::Segment,
                sargs: vec![],
                residual: vec![],
            }),
            cost,
            rows,
            order,
        }
    }

    #[test]
    fn nested_loop_multiplies_inner_by_outer_rows() {
        let outer = scan(0, Cost::new(100.0, 1000.0), 50.0, vec![]);
        let inner = scan(1, Cost::new(3.0, 10.0), 2.0, vec![]);
        let j = nested_loop(outer, inner, 100.0, None);
        assert_eq!(j.cost, Cost::new(100.0 + 50.0 * 3.0, 1000.0 + 50.0 * 10.0));
        assert_eq!(j.rows, 100.0);
        assert!(j.order.is_empty());
    }

    #[test]
    fn nested_loop_resident_cap_bounds_pages() {
        // A 3-page inner probed 1000 times: uncapped the model charges
        // 3000 pages; with the whole inner buffer-resident it cannot
        // exceed its footprint. RSI is never capped.
        let outer = scan(0, Cost::new(10.0, 100.0), 1000.0, vec![]);
        let inner = scan(1, Cost::new(3.0, 2.0), 2.0, vec![]);
        let capped = nested_loop(outer.clone(), inner.clone(), 2000.0, Some(4.0));
        assert_eq!(capped.cost, Cost::new(10.0 + 4.0, 100.0 + 2000.0));
        let uncapped = nested_loop(outer, inner, 2000.0, None);
        assert_eq!(uncapped.cost.pages, 10.0 + 3000.0);
    }

    #[test]
    fn nested_loop_preserves_outer_order() {
        let key = ColId::new(0, 1);
        let outer = scan(0, Cost::ZERO, 10.0, vec![key]);
        let inner = scan(1, Cost::ZERO, 1.0, vec![ColId::new(1, 0)]);
        let j = nested_loop(outer, inner, 10.0, None);
        assert_eq!(j.order, vec![key]);
    }

    #[test]
    fn sort_charges_write_read_and_rsi() {
        let input = scan(0, Cost::new(10.0, 100.0), 1000.0, vec![]);
        let s = sort_plan(input, vec![ColId::new(0, 1)], 50.0);
        // TEMPPAGES = ceil(1000*50/4080) = 13 → 26 pages + 1000 rsi extra.
        assert_eq!(s.cost, Cost::new(10.0 + 26.0, 100.0 + 1000.0));
        assert_eq!(s.order, vec![ColId::new(0, 1)]);
        assert_eq!(s.rows, 1000.0);
    }

    #[test]
    fn merge_adds_side_costs_once() {
        let ok = ColId::new(0, 1);
        let ik = ColId::new(1, 0);
        let outer = scan(0, Cost::new(40.0, 400.0), 400.0, vec![ok]);
        let inner = scan(1, Cost::new(20.0, 200.0), 200.0, vec![ik]);
        let j = merge_join(outer, inner, ok, ik, vec![7], 120.0);
        assert_eq!(j.cost, Cost::new(60.0, 600.0));
        assert_eq!(j.rows, 120.0);
        assert_eq!(j.order, vec![ok]);
        let PlanNode::Merge { residual, .. } = &j.node else { panic!() };
        assert_eq!(residual, &vec![7]);
    }

    #[test]
    fn merge_beats_nested_loop_when_inner_rescans_are_expensive() {
        // The §5 motivation: outer 1000 rows; inner full scan costs 100
        // pages. NL rescans the inner 1000 times; merge sorts it once.
        let ok = ColId::new(0, 0);
        let ik = ColId::new(1, 0);
        let outer = scan(0, Cost::new(100.0, 1000.0), 1000.0, vec![ok]);
        let inner_full = scan(1, Cost::new(100.0, 1000.0), 1000.0, vec![]);
        let nl = nested_loop(outer.clone(), inner_full.clone(), 5000.0, None);
        let sorted_inner = sort_plan(inner_full, vec![ik], 40.0);
        let mj = merge_join(outer, sorted_inner, ok, ik, vec![], 5000.0);
        assert!(mj.cost.total(0.02) < nl.cost.total(0.02));
    }
}
