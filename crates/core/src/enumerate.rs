//! Dynamic-programming join-order search (§5).
//!
//! "An efficient way to organize the search is to find the best join order
//! for successively larger subsets of tables": the enumerator computes,
//! for every subset of the FROM list, the cheapest plan **per interesting
//! order equivalence class** plus the cheapest plan overall, then extends
//! each subset by one relation using both join methods. The paper's join
//! order heuristic is applied: a relation joins only if a join predicate
//! connects it "to the other relations already participating in the join",
//! so Cartesian products are deferred to the end of the sequence.
//!
//! The number of solutions stored is at most `2^n × (interesting orders +
//! 1)`; [`EnumerationStats`] reports the actual counts and a byte
//! estimate, reproducing the paper's "a few thousand bytes of storage"
//! claim.

use crate::access::{access_paths, AccessCandidate, PlanCtx};
use crate::bitset::TableSet;
use crate::join::{merge_join, nested_loop, sort_plan};
use crate::order::OrderKey;
use crate::plan::PlanExpr;
use crate::query::{BoundQuery, ColId};
use crate::OptimizerConfig;
use std::collections::HashMap;
use sysr_catalog::Catalog;

/// Counters describing one enumeration run.
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerationStats {
    /// Subsets of the FROM list for which solutions were built.
    pub subsets_examined: u64,
    /// Candidate plans generated and costed.
    pub plans_considered: u64,
    /// Plans surviving in the solution table when the search finished.
    pub plans_kept: u64,
    /// (subset, relation) extension pairs skipped by the
    /// Cartesian-product-deferral heuristic.
    pub heuristic_skips: u64,
    /// Rough bytes held by the solution table (plans kept × node sizes) —
    /// comparable to the paper's "a few thousand bytes".
    pub solution_bytes: u64,
    /// Wall-clock time of the search, microseconds.
    pub elapsed_micros: u64,
}

/// Per-subset solution store: cheapest plan per order key, plus the
/// cheapest overall under the empty key.
struct SubsetSolutions {
    best: HashMap<OrderKey, PlanExpr>,
}

impl SubsetSolutions {
    fn new() -> Self {
        SubsetSolutions { best: HashMap::new() }
    }
}

/// One subset's surviving solutions, for search-tree reporting (the
/// paper's Figures 3-6): the cheapest plan per interesting-order key (the
/// empty key is the cheapest overall).
pub struct SubsetReport {
    pub set: TableSet,
    pub entries: Vec<(OrderKey, PlanExpr)>,
}

/// One surviving solution-table slot in a [`SubsetTrace`].
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The interesting-order equivalence classes of this slot (empty =
    /// "cheapest overall, any order").
    pub order: OrderKey,
    /// Weighted total cost under the model's W.
    pub total: f64,
    /// Predicted output cardinality.
    pub rows: f64,
    /// Compact plan shape, e.g. `(DEPT ⋈nl EMP(EMP_DNO))`.
    pub shape: String,
}

/// What the DP search did for one subset of the FROM list.
#[derive(Debug, Clone)]
pub struct SubsetTrace {
    /// Names of the subset's relations, FROM-list order.
    pub tables: Vec<String>,
    /// Subset size (the DP level).
    pub level: usize,
    /// Candidate plans generated and costed for this subset.
    pub generated: u64,
    /// Candidates that lost to a cheaper plan in every slot they competed
    /// for: `generated - surviving`.
    pub pruned: u64,
    /// Distinct surviving plans (one plan may fill both its order-class
    /// slot and the cheapest-overall slot; it counts once).
    pub surviving: u64,
    /// The surviving slots, sorted by order key.
    pub entries: Vec<TraceEntry>,
}

/// The full record of one join-order search: per-subset candidate
/// generation and pruning, renderable as a text tree ("the tree of
/// possible solutions", §5). The accounting identity
/// `pruned() + surviving() == plans_considered` holds by construction.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    /// Per-subset traces, sorted by level then subset bits.
    pub subsets: Vec<SubsetTrace>,
    /// Copy of the run's [`EnumerationStats`].
    pub stats: EnumerationStats,
    /// Whether the Cartesian-deferral heuristic stranded the full set and
    /// the search re-ran with the heuristic off.
    pub relaxed_fallback: bool,
}

impl SearchTrace {
    /// Candidates generated across all subsets (== `stats.plans_considered`).
    pub fn generated(&self) -> u64 {
        self.subsets.iter().map(|s| s.generated).sum()
    }

    /// Candidates pruned across all subsets.
    pub fn pruned(&self) -> u64 {
        self.subsets.iter().map(|s| s.pruned).sum()
    }

    /// Distinct plans surviving in the solution table.
    pub fn surviving(&self) -> u64 {
        self.subsets.iter().map(|s| s.surviving).sum()
    }

    /// Render the search as an indented text tree, one level per subset
    /// size.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search: {} candidates generated, {} pruned, {} surviving, {} heuristic skips{}",
            self.generated(),
            self.pruned(),
            self.surviving(),
            self.stats.heuristic_skips,
            if self.relaxed_fallback { " (relaxed fallback: heuristic off)" } else { "" },
        );
        let mut level = 0usize;
        for s in &self.subsets {
            if s.level != level {
                level = s.level;
                let _ = writeln!(out, "level {level} ({level}-relation subsets):");
            }
            let _ = writeln!(
                out,
                "  {{{}}}: generated={} pruned={} surviving={}",
                s.tables.join(", "),
                s.generated,
                s.pruned,
                s.surviving,
            );
            for e in &s.entries {
                let order =
                    if e.order.is_empty() { "any".to_string() } else { format!("{:?}", e.order) };
                let _ = writeln!(
                    out,
                    "    order={order}: cost={:.1} rows={:.1} {}",
                    e.total, e.rows, e.shape
                );
            }
        }
        out
    }
}

/// Everything one DP run produced (internal).
struct SearchOutcome {
    best: PlanExpr,
    stats: EnumerationStats,
    table: HashMap<TableSet, SubsetSolutions>,
    /// Candidates generated per subset (sums to `stats.plans_considered`).
    generated: HashMap<TableSet, u64>,
    /// True if the heuristic stranded the full set and the search re-ran
    /// with `defer_cartesian` off.
    relaxed: bool,
}

/// The join-order enumerator for one query block.
pub struct Enumerator<'a> {
    pub ctx: PlanCtx<'a>,
}

impl<'a> Enumerator<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a BoundQuery, config: OptimizerConfig) -> Self {
        Enumerator { ctx: PlanCtx::new(catalog, query, config) }
    }

    /// Run the DP search and also return the full solution table — the
    /// paper's "tree of possible solutions" — for the Figure 2-6 search
    /// tree dumps. Entries are sorted by subset then order key.
    pub fn best_plan_with_tree(&self) -> (PlanExpr, EnumerationStats, Vec<SubsetReport>) {
        let o = self.run_search();
        let mut reports: Vec<SubsetReport> = o
            .table
            .into_iter()
            .map(|(set, sols)| {
                let mut entries: Vec<(OrderKey, PlanExpr)> = sols.best.into_iter().collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                SubsetReport { set, entries }
            })
            .collect();
        reports.sort_by_key(|r| (r.set.len(), r.set.0));
        (o.best, o.stats, reports)
    }

    /// Run the DP search and return the cheapest complete plan (with a
    /// final sort appended if the required order could not be produced
    /// more cheaply by an ordered plan — §4's "cheapest of these
    /// alternatives").
    pub fn best_plan(&self) -> (PlanExpr, EnumerationStats) {
        let o = self.run_search();
        (o.best, o.stats)
    }

    /// Run the DP search and additionally return the [`SearchTrace`]:
    /// per-subset candidate generation, pruning, and surviving slots.
    pub fn best_plan_traced(&self) -> (PlanExpr, EnumerationStats, SearchTrace) {
        let o = self.run_search();
        let mut subsets: Vec<SubsetTrace> = o
            .table
            .iter()
            .map(|(set, sols)| {
                let mut entries: Vec<(OrderKey, PlanExpr)> =
                    sols.best.iter().map(|(k, p)| (k.clone(), p.clone())).collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                // Distinct plans: the cheapest-overall slot usually aliases
                // one of the order slots; count each stored plan once.
                let mut distinct: Vec<&PlanExpr> = Vec::new();
                for (_, p) in &entries {
                    if !distinct.contains(&p) {
                        distinct.push(p);
                    }
                }
                // audit:allow(no-as-cast) — collection length into a u64 counter
                let surviving = distinct.len() as u64;
                let generated = o.generated.get(set).copied().unwrap_or(0);
                SubsetTrace {
                    tables: set
                        .iter()
                        .map(|t| {
                            self.ctx
                                .query
                                .tables
                                .get(t)
                                .map(|bt| bt.name.clone())
                                .unwrap_or_else(|| format!("T{t}"))
                        })
                        .collect(),
                    level: set.len(),
                    generated,
                    pruned: generated.saturating_sub(surviving),
                    surviving,
                    entries: entries
                        .into_iter()
                        .map(|(order, p)| TraceEntry {
                            order,
                            total: self.ctx.model.total(p.cost),
                            rows: p.rows,
                            shape: self.shape(&p),
                        })
                        .collect(),
                }
            })
            .collect();
        subsets.sort_by_key(|s| (s.level, s.tables.clone()));
        let trace = SearchTrace { subsets, stats: o.stats, relaxed_fallback: o.relaxed };
        (o.best, o.stats, trace)
    }

    /// Compact one-line plan shape for trace entries.
    fn shape(&self, p: &PlanExpr) -> String {
        match &p.node {
            crate::plan::PlanNode::Scan(s) => {
                let name = self
                    .ctx
                    .query
                    .tables
                    .get(s.table)
                    .map(|bt| bt.name.clone())
                    .unwrap_or_else(|| format!("T{}", s.table));
                match &s.access {
                    crate::plan::Access::Segment => name,
                    crate::plan::Access::Index { index, .. } => {
                        let iname = self
                            .ctx
                            .catalog
                            .index(*index)
                            .map(|i| i.name.clone())
                            .unwrap_or_else(|| format!("#{index}"));
                        format!("{name}({iname})")
                    }
                }
            }
            crate::plan::PlanNode::NestedLoop { outer, inner } => {
                format!("({} \u{22c8}nl {})", self.shape(outer), self.shape(inner))
            }
            crate::plan::PlanNode::Merge { outer, inner, .. } => {
                format!("({} \u{22c8}m {})", self.shape(outer), self.shape(inner))
            }
            crate::plan::PlanNode::Sort { input, .. } => {
                format!("sort({})", self.shape(input))
            }
        }
    }

    fn run_search(&self) -> SearchOutcome {
        let started = std::time::Instant::now();
        let mut stats = EnumerationStats::default();
        let n = self.ctx.query.tables.len();
        assert!(n > 0, "query block has no tables");
        let mut table: HashMap<TableSet, SubsetSolutions> = HashMap::new();
        let mut generated: HashMap<TableSet, u64> = HashMap::new();

        // ---- single relations (Fig. 2 / Fig. 3) --------------------------
        for t in 0..n {
            let set = TableSet::single(t);
            let mut sols = SubsetSolutions::new();
            let before = stats.plans_considered;
            for cand in access_paths(&self.ctx, t, TableSet::EMPTY) {
                self.consider(&mut sols, cand.into_plan(), &mut stats);
            }
            generated.insert(set, stats.plans_considered - before);
            stats.subsets_examined += 1;
            table.insert(set, sols);
        }

        // ---- successively larger subsets (Figs. 4-6) ----------------------
        for k in 2..=n {
            for set in TableSet::subsets_of_size(n, k) {
                let mut sols = SubsetSolutions::new();
                let before = stats.plans_considered;
                stats.subsets_examined += 1;
                // Which relations may join last? The paper's heuristic:
                // only orderings "which have join predicates relating the
                // inner relation to the other relations already
                // participating in the join" — a Cartesian extension is
                // allowed only when nothing connected could extend the
                // outer instead, so products are "performed as late in the
                // join sequence as possible".
                let members: Vec<usize> = set.iter().collect();
                let chosen: Vec<usize> = if self.ctx.config.defer_cartesian {
                    let ok: Vec<usize> = members
                        .iter()
                        .copied()
                        .filter(|&t| self.extension_allowed(t, set.minus(TableSet::single(t))))
                        .collect();
                    // audit:allow(no-as-cast) — ok is a filtered subset of members, difference fits u64
                    stats.heuristic_skips += (members.len() - ok.len()) as u64;
                    ok
                } else {
                    members
                };
                for &t in &chosen {
                    let s_prime = set.minus(TableSet::single(t));
                    let Some(outer_sols) = table.get(&s_prime) else { continue };
                    let outer_plans: Vec<PlanExpr> = outer_sols.best.values().cloned().collect();
                    let rows_out = self.ctx.subset_rows(set);
                    let inner_probe = access_paths(&self.ctx, t, s_prime);
                    let inner_local = access_paths(&self.ctx, t, TableSet::EMPTY);
                    for outer in &outer_plans {
                        for cand in self.join_candidates(
                            outer,
                            t,
                            s_prime,
                            rows_out,
                            &inner_probe,
                            &inner_local,
                        ) {
                            self.consider(&mut sols, cand, &mut stats);
                        }
                    }
                }
                generated.insert(set, stats.plans_considered - before);
                table.insert(set, sols);
            }
        }

        // ---- final choice: required order vs. cheapest + sort -------------
        let full = TableSet::full(n);
        if table.get(&full).map(|s| s.best.is_empty()).unwrap_or(true) {
            // Degenerate join graphs can strand the heuristic; fall back to
            // the exhaustive pairing (correctness over pruning).
            debug_assert!(self.ctx.config.defer_cartesian, "full set must be solvable");
            let relaxed = Enumerator {
                ctx: PlanCtx::new(
                    self.ctx.catalog,
                    self.ctx.query,
                    OptimizerConfig { defer_cartesian: false, ..self.ctx.config },
                ),
            };
            let mut outcome = relaxed.run_search();
            outcome.relaxed = true;
            return outcome;
        }
        // audit:allow(no-unwrap) — run_search falls back to the relaxed pass above precisely so
        // the full set always has at least one solution
        let sols = table.get(&full).expect("full set always has solutions");
        // audit:allow(no-as-cast) — slot counts into u64 reporting counters
        stats.plans_kept = table.values().map(|s| s.best.len() as u64).sum();
        stats.solution_bytes = table
            .values()
            .flat_map(|s| s.best.values())
            // audit:allow(no-as-cast) — byte-size estimate for reporting only
            .map(|p| (p.node_count() * std::mem::size_of::<PlanExpr>()) as u64)
            .sum();

        let required = &self.ctx.orders.required;
        let best = if required.is_empty() {
            sols.best[&OrderKey::new()].clone()
        } else {
            let ordered = sols
                .best
                .iter()
                .filter(|(key, _)| self.ctx.orders.satisfies_required(key))
                .map(|(_, p)| p)
                .min_by(|a, b| {
                    self.ctx.model.total(a.cost).total_cmp(&self.ctx.model.total(b.cost))
                })
                .cloned();
            let unordered = &sols.best[&OrderKey::new()];
            let sorted = sort_plan(
                unordered.clone(),
                self.ctx.query.required_order(),
                self.ctx.composite_width(full),
            );
            match ordered {
                Some(o) if self.ctx.model.better(o.cost, sorted.cost) => o,
                _ => sorted,
            }
        };
        // audit:allow(no-as-cast) — elapsed micros saturate u64 after ~580k years
        stats.elapsed_micros = started.elapsed().as_micros() as u64;
        SearchOutcome { best, stats, table, generated, relaxed: false }
    }

    /// Exhaustively enumerate complete plans (no pruning, no heuristic),
    /// capped at `cap` plans per subset. Used by the §7 optimality
    /// experiment, which executes *every* plan and checks the optimizer
    /// picked the measured-best one.
    pub fn all_plans(&self, cap: usize) -> Vec<PlanExpr> {
        let n = self.ctx.query.tables.len();
        let mut memo: HashMap<TableSet, Vec<PlanExpr>> = HashMap::new();
        for t in 0..n {
            let plans = access_paths(&self.ctx, t, TableSet::EMPTY)
                .into_iter()
                .map(AccessCandidate::into_plan)
                .collect();
            memo.insert(TableSet::single(t), plans);
        }
        for k in 2..=n {
            for set in TableSet::subsets_of_size(n, k) {
                let mut plans = Vec::new();
                let rows_out = self.ctx.subset_rows(set);
                for t in set.iter() {
                    let s_prime = set.minus(TableSet::single(t));
                    let inner_probe = access_paths(&self.ctx, t, s_prime);
                    let inner_local = access_paths(&self.ctx, t, TableSet::EMPTY);
                    let outers = memo[&s_prime].clone();
                    for outer in &outers {
                        plans.extend(self.join_candidates(
                            outer,
                            t,
                            s_prime,
                            rows_out,
                            &inner_probe,
                            &inner_local,
                        ));
                        if plans.len() > cap {
                            break;
                        }
                    }
                    if plans.len() > cap {
                        break;
                    }
                }
                plans.truncate(cap);
                memo.insert(set, plans);
            }
        }
        let mut complete = memo.remove(&TableSet::full(n)).unwrap_or_default();
        // Apply the same required-order discipline as `best_plan`, so every
        // returned plan answers the query (including its ORDER BY /
        // GROUP BY) and measured costs are comparable.
        if !self.ctx.orders.required.is_empty() {
            let width = self.ctx.composite_width(TableSet::full(n));
            complete = complete
                .into_iter()
                .map(|p| {
                    if self.ctx.orders.satisfies_required(&self.ctx.orders.order_key(&p.order)) {
                        p
                    } else {
                        sort_plan(p, self.ctx.query.required_order(), width)
                    }
                })
                .collect();
        }
        complete
    }

    /// Cheapest complete plan whose left-deep join sequence is exactly
    /// `order` (a permutation of the block's table positions). Every
    /// access path and join method is considered at each step, with none
    /// of the DP's interesting-order pruning; `cap` bounds the per-prefix
    /// frontier by keeping the `cap` cheapest prefixes. Truncation can
    /// lose the per-order optimum but never fabricates one — every
    /// surviving plan is complete and real, so the returned cost is
    /// always an upper bound the DP winner must meet or beat. Returns
    /// `None` if `order` is not a permutation of `0..n` or the frontier
    /// empties.
    pub fn best_plan_for_order(&self, order: &[usize], cap: usize) -> Option<PlanExpr> {
        let n = self.ctx.query.tables.len();
        if order.len() != n || order.iter().copied().collect::<TableSet>() != TableSet::full(n) {
            return None;
        }
        let mut frontier: Vec<PlanExpr> = access_paths(&self.ctx, order[0], TableSet::EMPTY)
            .into_iter()
            .map(AccessCandidate::into_plan)
            .collect();
        let mut joined = TableSet::single(order[0]);
        for &t in &order[1..] {
            let set = joined.union(TableSet::single(t));
            let rows_out = self.ctx.subset_rows(set);
            let inner_probe = access_paths(&self.ctx, t, joined);
            let inner_local = access_paths(&self.ctx, t, TableSet::EMPTY);
            let mut next = Vec::new();
            for outer in &frontier {
                next.extend(self.join_candidates(
                    outer,
                    t,
                    joined,
                    rows_out,
                    &inner_probe,
                    &inner_local,
                ));
            }
            if next.len() > cap {
                next.sort_by(|a, b| {
                    self.ctx.model.total(a.cost).total_cmp(&self.ctx.model.total(b.cost))
                });
                next.truncate(cap);
            }
            frontier = next;
            joined = set;
        }
        // Same required-order discipline as `best_plan` / `all_plans`.
        if !self.ctx.orders.required.is_empty() {
            let width = self.ctx.composite_width(TableSet::full(n));
            frontier = frontier
                .into_iter()
                .map(|p| {
                    if self.ctx.orders.satisfies_required(&self.ctx.orders.order_key(&p.order)) {
                        p
                    } else {
                        sort_plan(p, self.ctx.query.required_order(), width)
                    }
                })
                .collect();
        }
        frontier
            .into_iter()
            .min_by(|a, b| self.ctx.model.total(a.cost).total_cmp(&self.ctx.model.total(b.cost)))
    }

    /// All ways to join relation `t` (the inner) to an existing plan for
    /// `s_prime` (the outer): nested loops over every inner access path,
    /// and merging scans over every equi-join predicate connecting them.
    fn join_candidates(
        &self,
        outer: &PlanExpr,
        t: usize,
        s_prime: TableSet,
        rows_out: f64,
        inner_probe: &[AccessCandidate],
        inner_local: &[AccessCandidate],
    ) -> Vec<PlanExpr> {
        let mut out = Vec::new();

        // ---- nested loops --------------------------------------------------
        for cand in inner_probe {
            let cap = self.inner_footprint(t, cand);
            out.push(nested_loop(outer.clone(), cand.clone().into_plan(), rows_out, cap));
        }

        // ---- merging scans -------------------------------------------------
        for (fidx, outer_col, inner_col) in self.merge_keys(t, s_prime) {
            // Outer side: use as-is when already ordered on the join
            // column's class, otherwise sort the composite.
            let outer_ready =
                self.ctx.orders.leads_with(&self.ctx.orders.order_key(&outer.order), outer_col);
            let outer_variants: Vec<PlanExpr> = if outer_ready {
                vec![outer.clone()]
            } else {
                vec![sort_plan(outer.clone(), vec![outer_col], self.ctx.composite_width(s_prime))]
            };
            // Inner side: an ordered access path on the join column (local
            // predicates only), or sort the cheapest local path.
            let mut inner_variants: Vec<(PlanExpr, Vec<usize>)> = Vec::new();
            for cand in inner_local {
                if cand.order.first() == Some(&inner_col) {
                    let mut applied = cand.applied.clone();
                    applied.push(fidx);
                    inner_variants.push((cand.clone().into_plan(), applied));
                }
            }
            if let Some(cheapest) = inner_local.iter().min_by(|a, b| {
                self.ctx.model.total(a.cost).total_cmp(&self.ctx.model.total(b.cost))
            }) {
                let mut applied = cheapest.applied.clone();
                applied.push(fidx);
                inner_variants.push((
                    sort_plan(cheapest.clone().into_plan(), vec![inner_col], self.ctx.width(t)),
                    applied,
                ));
            }
            // Residual: every factor newly in scope that the inner scan and
            // merge key do not already enforce.
            let set = s_prime.union(TableSet::single(t));
            for outer_variant in &outer_variants {
                for (inner_variant, applied) in &inner_variants {
                    let residual: Vec<usize> = self
                        .ctx
                        .query
                        .factors
                        .iter()
                        .enumerate()
                        .filter(|(i, f)| {
                            !f.tables.is_empty()
                                && f.tables.contains(t)
                                && f.tables.is_subset_of(set)
                                && !applied.contains(i)
                        })
                        .map(|(i, _)| i)
                        .collect();
                    out.push(merge_join(
                        outer_variant.clone(),
                        inner_variant.clone(),
                        outer_col,
                        inner_col,
                        residual,
                        rows_out,
                    ));
                }
            }
        }
        out
    }

    /// Buffer-resident footprint of an inner access path: the pages the
    /// repeated probes can touch in total (data pages plus the probed
    /// index's pages), if that fits in the buffer pool — the nested-loop
    /// analog of Table 2's "fits in the System R buffer" variants.
    fn inner_footprint(&self, t: usize, cand: &AccessCandidate) -> Option<f64> {
        let rel = self.ctx.relation(t);
        let pages = match &cand.scan.access {
            crate::plan::Access::Segment => rel.stats.segment_scan_pages(),
            crate::plan::Access::Index { index, .. } => {
                // audit:allow(no-as-cast) — catalog page/tuple counts widened to f64
                let nindx =
                    self.ctx.catalog.index(*index).map(|i| i.stats.nindx as f64).unwrap_or(0.0);
                // audit:allow(no-as-cast)
                rel.stats.tcard as f64 + nindx
            }
        };
        (pages <= self.ctx.model.buffer_pages).then_some(pages)
    }

    /// Equi-join factors usable as the merge key between `t` and `s_prime`:
    /// returns `(factor, outer column, inner column)`.
    fn merge_keys(&self, t: usize, s_prime: TableSet) -> Vec<(usize, ColId, ColId)> {
        self.ctx
            .query
            .factors
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let (a, b) = f.equijoin?;
                if a.table == t && s_prime.contains(b.table) {
                    Some((i, b, a))
                } else if b.table == t && s_prime.contains(a.table) {
                    Some((i, a, b))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The join-order heuristic's test for extending `s_prime` with `t`:
    /// allowed when a join predicate relates `t` to `s_prime`, or — the
    /// Cartesian case — when no relation at all is connected to `s_prime`,
    /// so the product cannot be deferred any further.
    fn extension_allowed(&self, t: usize, s_prime: TableSet) -> bool {
        if self.connected(t, s_prime) {
            return true;
        }
        let n = self.ctx.query.tables.len();
        !(0..n).any(|u| !s_prime.contains(u) && self.connected(u, s_prime))
    }

    /// Is `t` connected to `s_prime` by any join predicate? ("join orders
    /// which have join predicates relating the inner relation to the other
    /// relations already participating in the join", §5.)
    fn connected(&self, t: usize, s_prime: TableSet) -> bool {
        self.ctx.query.factors.iter().any(|f| f.tables.contains(t) && f.tables.intersects(s_prime))
    }

    /// Offer a candidate to a subset's solution store: it may become the
    /// cheapest plan overall (empty key) and/or the cheapest for its
    /// interesting-order class.
    fn consider(&self, sols: &mut SubsetSolutions, plan: PlanExpr, stats: &mut EnumerationStats) {
        stats.plans_considered += 1;
        let key = if self.ctx.config.interesting_orders {
            self.ctx.orders.order_key(&plan.order)
        } else {
            OrderKey::new()
        };
        let total = self.ctx.model.total(plan.cost);
        if !key.is_empty() {
            match sols.best.get(&key) {
                Some(existing) if self.ctx.model.total(existing.cost) <= total => {}
                _ => {
                    sols.best.insert(key, plan.clone());
                }
            }
        }
        let unordered = OrderKey::new();
        match sols.best.get(&unordered) {
            Some(existing) if self.ctx.model.total(existing.cost) <= total => {}
            _ => {
                sols.best.insert(unordered, plan);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use crate::cost::CostModel;
    use crate::plan::{Access, PlanNode};
    use sysr_catalog::{ColumnMeta, IndexStats, RelStats};
    use sysr_rss::{ColType, Value};
    use sysr_sql::{parse_statement, Statement};

    /// The paper's Fig. 1 schema: EMP(NAME,DNO,JOB,SAL), DEPT(DNO,DNAME,
    /// LOC), JOB(JOB,TITLE), with indexes EMP.DNO, EMP.JOB, DEPT.DNO,
    /// JOB.JOB.
    fn fig1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let emp = cat
            .create_relation(
                "EMP",
                0,
                vec![
                    ColumnMeta::new("NAME", ColType::Str),
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("JOB", ColType::Int),
                    ColumnMeta::new("SAL", ColType::Float),
                ],
            )
            .unwrap();
        let dept = cat
            .create_relation(
                "DEPT",
                1,
                vec![
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("DNAME", ColType::Str),
                    ColumnMeta::new("LOC", ColType::Str),
                ],
            )
            .unwrap();
        let job = cat
            .create_relation(
                "JOB",
                2,
                vec![ColumnMeta::new("JOB", ColType::Int), ColumnMeta::new("TITLE", ColType::Str)],
            )
            .unwrap();
        cat.set_relation_stats(
            emp,
            RelStats { ncard: 10_000, tcard: 400, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            dept,
            RelStats { ncard: 100, tcard: 5, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            job,
            RelStats { ncard: 15, tcard: 1, pfrac: 1.0, avg_width: 24.0, valid: true },
        );
        cat.register_index(0, "EMP_DNO", emp, vec![1], false, false).unwrap();
        cat.register_index(1, "EMP_JOB", emp, vec![2], false, false).unwrap();
        cat.register_index(2, "DEPT_DNO", dept, vec![0], true, false).unwrap();
        cat.register_index(3, "JOB_JOB", job, vec![0], true, false).unwrap();
        for (id, icard, nindx) in [(0u32, 1000u64, 30u64), (1, 15, 28), (2, 100, 2), (3, 15, 1)] {
            cat.set_index_stats(
                id,
                IndexStats {
                    icard,
                    nindx,
                    leaf_pages: nindx.max(2) - 1,
                    low_key: Some(Value::Int(0)),
                    high_key: Some(Value::Int(icard as i64 - 1)),
                    valid: true,
                },
            );
        }
        cat
    }

    const FIG1_SQL: &str = "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
        WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
          AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

    fn best_for(cat: &Catalog, sql: &str, config: OptimizerConfig) -> (PlanExpr, EnumerationStats) {
        let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
        let q = bind_select(cat, &stmt).unwrap();
        let e = Enumerator::new(cat, &q, config);
        let (plan, stats) = e.best_plan();
        (plan, stats)
    }

    #[test]
    fn single_relation_picks_cheapest_path() {
        let cat = fig1_catalog();
        let (plan, stats) =
            best_for(&cat, "SELECT NAME FROM EMP WHERE DNO = 5", OptimizerConfig::default());
        let PlanNode::Scan(scan) = &plan.node else { panic!("expected scan") };
        assert!(
            matches!(&scan.access, Access::Index { index: 0, .. }),
            "DNO equal predicate should choose the DNO index: {plan:?}"
        );
        assert!(stats.plans_considered >= 3);
    }

    #[test]
    fn fig1_join_covers_all_three_tables() {
        let cat = fig1_catalog();
        let (plan, stats) = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        assert_eq!(plan.tables().len(), 3);
        assert_eq!(plan.join_count(), 2);
        assert!(stats.subsets_examined >= 6, "3 singles + 3 pairs + 1 triple minus skips");
        assert!(stats.plans_kept > 0 && stats.solution_bytes > 0);
    }

    #[test]
    fn heuristic_trades_search_for_possible_cost() {
        // The Cartesian-deferral heuristic shrinks the search ("the search
        // space can be reduced…"); it is a heuristic, so the unrestricted
        // search may find a plan at most as cheap — here it genuinely does
        // (two tiny filtered relations crossed, then probing EMP).
        let cat = fig1_catalog();
        let with = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        let without = best_for(
            &cat,
            FIG1_SQL,
            OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() },
        );
        let w = OptimizerConfig::default().w;
        assert!(without.0.cost.total(w) <= with.0.cost.total(w) + 1e-9);
        assert!(with.1.plans_considered < without.1.plans_considered);
        assert!(with.1.heuristic_skips > 0);
    }

    #[test]
    fn per_order_minimum_matches_relaxed_dp() {
        // Minimising best_plan_for_order over every permutation re-derives
        // the exhaustive optimum, which the relaxed DP must equal.
        let cat = fig1_catalog();
        let relaxed = OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() };
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let e = Enumerator::new(&cat, &q, relaxed);
        let (best, _) = e.best_plan();
        let model = CostModel::new(relaxed.w, relaxed.buffer_pages);
        let dp_total = model.total(best.cost);
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut min_over_orders = f64::INFINITY;
        for order in &orders {
            let plan = e.best_plan_for_order(order, 100_000).expect("order plan");
            assert_eq!(plan.tables().len(), 3, "order {order:?} must cover all tables");
            let total = model.total(plan.cost);
            assert!(
                total >= dp_total - 1e-6,
                "order {order:?} plan ({total}) beat the DP winner ({dp_total})"
            );
            min_over_orders = min_over_orders.min(total);
        }
        assert!(
            (min_over_orders - dp_total).abs() <= 1e-6 * dp_total.abs().max(1.0),
            "best over all orders {min_over_orders} != DP winner {dp_total}"
        );
        // Malformed permutations are rejected, not mis-planned.
        assert!(e.best_plan_for_order(&[0, 1], 1000).is_none());
        assert!(e.best_plan_for_order(&[0, 1, 1], 1000).is_none());
    }

    #[test]
    fn cartesian_deferred_join_orders_excluded() {
        // With predicates EMP-DEPT and EMP-JOB (different EMP columns), the
        // heuristic must not join DEPT with JOB first (no predicate relates
        // them): exactly the paper's "T1-T3-T2 / T3-T1-T2 not considered".
        let cat = fig1_catalog();
        let (plan, _) = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        let order = plan.join_order();
        let d = order.iter().position(|&t| t == 1).unwrap();
        let j = order.iter().position(|&t| t == 2).unwrap();
        let e = order.iter().position(|&t| t == 0).unwrap();
        assert!(
            e < d || e < j,
            "EMP must participate before the second of DEPT/JOB joins: {order:?}"
        );
    }

    #[test]
    fn order_by_prefers_ordered_path_or_sorts() {
        let cat = fig1_catalog();
        let (plan, _) =
            best_for(&cat, "SELECT NAME FROM EMP ORDER BY DNO", OptimizerConfig::default());
        // Either an index-ordered scan on DNO or a sort over the segment
        // scan; both satisfy the order. With EMP at 400 pages vs index
        // (30 + 10000) unclustered, the sort may win — just verify order.
        let satisfied = match &plan.node {
            PlanNode::Scan(s) => matches!(&s.access, Access::Index { index: 0, .. }),
            PlanNode::Sort { keys, .. } => keys == &vec![ColId::new(0, 1)],
            _ => false,
        };
        assert!(satisfied, "plan must deliver DNO order: {plan:?}");
    }

    #[test]
    fn group_by_produces_required_order() {
        let cat = fig1_catalog();
        let (plan, _) = best_for(
            &cat,
            "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
            OptimizerConfig::default(),
        );
        let ok = match &plan.node {
            PlanNode::Scan(s) => matches!(&s.access, Access::Index { index: 0, .. }),
            PlanNode::Sort { keys, .. } => keys == &vec![ColId::new(0, 1)],
            _ => false,
        };
        assert!(ok, "{plan:?}");
    }

    #[test]
    fn merge_join_chosen_for_unindexed_large_join() {
        // Two relations without useful indexes on the join column: nested
        // loops would rescan the inner per outer tuple; merging scans sort
        // both once.
        let mut cat = Catalog::new();
        let a = cat
            .create_relation(
                "A",
                0,
                vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("PAD", ColType::Str)],
            )
            .unwrap();
        let b = cat
            .create_relation(
                "B",
                1,
                vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("PAD", ColType::Str)],
            )
            .unwrap();
        cat.set_relation_stats(
            a,
            RelStats { ncard: 5_000, tcard: 250, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            b,
            RelStats { ncard: 5_000, tcard: 250, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        let (plan, _) =
            best_for(&cat, "SELECT A.PAD FROM A, B WHERE A.K = B.K", OptimizerConfig::default());
        fn has_merge(p: &PlanExpr) -> bool {
            match &p.node {
                PlanNode::Merge { .. } => true,
                PlanNode::NestedLoop { outer, inner } => has_merge(outer) || has_merge(inner),
                PlanNode::Sort { input, .. } => has_merge(input),
                PlanNode::Scan(_) => false,
            }
        }
        assert!(has_merge(&plan), "expected a merge join: {plan:?}");
    }

    #[test]
    fn nested_loop_chosen_for_selective_indexed_inner() {
        // Small outer (DEPT restricted) probing EMP's DNO index: NL wins.
        let cat = fig1_catalog();
        let (plan, _) = best_for(
            &cat,
            "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND DEPT.DNAME = 'TOOLS'",
            OptimizerConfig::default(),
        );
        let PlanNode::NestedLoop { outer, inner } = &plan.node else {
            panic!("expected nested loop: {plan:?}")
        };
        // DEPT (selective) outer, EMP probed via DNO index.
        assert_eq!(outer.tables().iter().collect::<Vec<_>>(), vec![1]);
        let PlanNode::Scan(s) = &inner.node else { panic!() };
        assert!(matches!(&s.access, Access::Index { index: 0, .. }));
    }

    #[test]
    fn dp_without_heuristic_matches_exhaustive_minimum() {
        // Pruning per interesting-order class is lossless: the DP (with the
        // heuristic off) must find exactly the exhaustive minimum.
        let cat = fig1_catalog();
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let config = OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() };
        let e = Enumerator::new(&cat, &q, config);
        let (best, _) = e.best_plan();
        let all = e.all_plans(200_000);
        assert!(!all.is_empty());
        let w = config.w;
        let min = all.iter().map(|p| p.cost.total(w)).fold(f64::INFINITY, f64::min);
        assert!(
            (best.cost.total(w) - min).abs() < 1e-6,
            "DP best {} must match exhaustive min {min}",
            best.cost.total(w)
        );
    }

    #[test]
    fn interesting_orders_ablation_may_only_worsen() {
        let cat = fig1_catalog();
        let sql = "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO ORDER BY DNAME";
        let with = best_for(&cat, sql, OptimizerConfig::default());
        let without = best_for(
            &cat,
            sql,
            OptimizerConfig { interesting_orders: false, ..OptimizerConfig::default() },
        );
        let w = OptimizerConfig::default().w;
        assert!(with.0.cost.total(w) <= without.0.cost.total(w) + 1e-9);
    }

    #[test]
    fn eight_table_chain_enumerates_quickly() {
        // "Joins of 8 tables have been optimized in a few seconds" (on 1979
        // hardware); the shape holds — and modern hardware does it in well
        // under a second.
        let mut cat = Catalog::new();
        for i in 0..8 {
            let r = cat
                .create_relation(
                    &format!("T{i}"),
                    i,
                    vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("FK", ColType::Int)],
                )
                .unwrap();
            cat.set_relation_stats(
                r,
                RelStats {
                    ncard: 1000 * (i as u64 + 1),
                    tcard: 50,
                    pfrac: 1.0,
                    avg_width: 20.0,
                    valid: true,
                },
            );
            cat.register_index(i, &format!("T{i}_K"), r, vec![0], true, false).unwrap();
            cat.set_index_stats(
                i,
                IndexStats {
                    icard: 1000 * (i as u64 + 1),
                    nindx: 5,
                    leaf_pages: 4,
                    low_key: Some(Value::Int(0)),
                    high_key: Some(Value::Int(999)),
                    valid: true,
                },
            );
        }
        let joins: Vec<String> = (0..7).map(|i| format!("T{i}.FK = T{}.K", i + 1)).collect();
        let sql = format!("SELECT T0.K FROM T0,T1,T2,T3,T4,T5,T6,T7 WHERE {}", joins.join(" AND "));
        let started = std::time::Instant::now();
        let (plan, stats) = best_for(&cat, &sql, OptimizerConfig::default());
        assert_eq!(plan.tables().len(), 8);
        assert!(stats.heuristic_skips > 0, "chain query must skip many extensions");
        assert!(started.elapsed().as_secs() < 10, "8-way enumeration took {:?}", started.elapsed());
    }
}
