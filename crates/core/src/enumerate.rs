//! Dynamic-programming join-order search (§5).
//!
//! "An efficient way to organize the search is to find the best join order
//! for successively larger subsets of tables": the enumerator computes,
//! for every subset of the FROM list, the cheapest plan **per interesting
//! order equivalence class** plus the cheapest plan overall, then extends
//! each subset by one relation using both join methods. The paper's join
//! order heuristic is applied: a relation joins only if a join predicate
//! connects it "to the other relations already participating in the join",
//! so Cartesian products are deferred to the end of the sequence.
//!
//! The number of solutions stored is at most `2^n × (interesting orders +
//! 1)`; [`EnumerationStats`] reports the actual counts and a byte
//! estimate, reproducing the paper's "a few thousand bytes of storage"
//! claim.
//!
//! # Hot-path engineering
//!
//! The search works on an indexed [`PlanArena`]
//! instead of cloned [`PlanExpr`] trees, with order keys interned to
//! dense ids ([`KeyInterner`]) — candidate
//! generation is a node push, not a subtree clone, and solution stores
//! are flat slot arrays. Because every level-*k* subset depends only on
//! the frozen level-<*k* memo, the per-level batch of (subset, extension)
//! work items can be solved by a scoped worker pool
//! ([`OptimizerConfig::threads`]); results are merged deterministically
//! in work-item order, so plans, costs, and every trace counter are
//! bit-identical to the sequential `threads = 1` path.

use crate::access::{access_paths, AccessCandidate, PlanCtx};
use crate::arena::{ArenaNode, NodeId, NodeKind, PlanArena, WorkArena};
use crate::bitset::TableSet;
use crate::intern::{KeyId, KeyInterner, EMPTY_KEY};
use crate::join::{
    merge_cost, nested_loop_cost, partial_sort_cost, partial_sort_plan, sort_cost, sort_plan,
};
use crate::num::{card_f64, dense_id};
use crate::order::OrderKey;
use crate::plan::PlanExpr;
use crate::query::{BoundQuery, ColId};
use crate::OptimizerConfig;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize};
use std::sync::{Arc, Mutex};
use sysr_catalog::Catalog;

/// Per-arena-node byte estimate for the `solution_bytes` reporting
/// counter (materialized [`PlanExpr`] size per retained node).
const PLAN_EXPR_BYTES: u64 = std::mem::size_of::<PlanExpr>() as u64;

/// Counters describing one enumeration run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnumerationStats {
    /// Subsets of the FROM list for which solutions were built.
    pub subsets_examined: u64,
    /// Candidate plans generated and costed.
    pub plans_considered: u64,
    /// Plans surviving in the solution table when the search finished.
    pub plans_kept: u64,
    /// (subset, relation) extension pairs skipped by the
    /// Cartesian-product-deferral heuristic.
    pub heuristic_skips: u64,
    /// Rough bytes held by the solution table (plans kept × node sizes) —
    /// comparable to the paper's "a few thousand bytes".
    pub solution_bytes: u64,
    /// Wall-clock time of the search, microseconds.
    pub elapsed_micros: u64,
}

/// One subset's surviving solutions, for search-tree reporting (the
/// paper's Figures 3-6): the cheapest plan per interesting-order key (the
/// empty key is the cheapest overall).
pub struct SubsetReport {
    pub set: TableSet,
    pub entries: Vec<(OrderKey, PlanExpr)>,
}

/// One surviving solution-table slot in a [`SubsetTrace`].
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// The interesting-order equivalence classes of this slot (empty =
    /// "cheapest overall, any order").
    pub order: OrderKey,
    /// Weighted total cost under the model's W.
    pub total: f64,
    /// Predicted output cardinality.
    pub rows: f64,
    /// Compact plan shape, e.g. `(DEPT ⋈nl EMP(EMP_DNO))`.
    pub shape: String,
}

/// What the DP search did for one subset of the FROM list.
#[derive(Debug, Clone)]
pub struct SubsetTrace {
    /// The subset's bit pattern over FROM-list positions.
    pub set: TableSet,
    /// Names of the subset's relations, FROM-list order.
    pub tables: Vec<String>,
    /// Subset size (the DP level).
    pub level: usize,
    /// Candidate plans generated and costed for this subset.
    pub generated: u64,
    /// Candidates that lost to a cheaper plan in every slot they competed
    /// for: `generated - surviving`.
    pub pruned: u64,
    /// Distinct surviving plans (one plan may fill both its order-class
    /// slot and the cheapest-overall slot; it counts once).
    pub surviving: u64,
    /// The surviving slots, sorted by order key.
    pub entries: Vec<TraceEntry>,
}

/// The full record of one join-order search: per-subset candidate
/// generation and pruning, renderable as a text tree ("the tree of
/// possible solutions", §5). The accounting identity
/// `pruned() + surviving() == plans_considered` holds by construction.
#[derive(Debug, Clone)]
pub struct SearchTrace {
    /// Per-subset traces, sorted by level then subset bit pattern.
    pub subsets: Vec<SubsetTrace>,
    /// Copy of the run's [`EnumerationStats`].
    pub stats: EnumerationStats,
    /// Whether the Cartesian-deferral heuristic stranded the full set and
    /// the search re-ran with the heuristic off.
    pub relaxed_fallback: bool,
}

impl SearchTrace {
    /// Candidates generated across all subsets (== `stats.plans_considered`).
    pub fn generated(&self) -> u64 {
        self.subsets.iter().map(|s| s.generated).sum()
    }

    /// Candidates pruned across all subsets.
    pub fn pruned(&self) -> u64 {
        self.subsets.iter().map(|s| s.pruned).sum()
    }

    /// Distinct plans surviving in the solution table.
    pub fn surviving(&self) -> u64 {
        self.subsets.iter().map(|s| s.surviving).sum()
    }

    /// Render the search as an indented text tree, one level per subset
    /// size.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "search: {} candidates generated, {} pruned, {} surviving, {} heuristic skips{}",
            self.generated(),
            self.pruned(),
            self.surviving(),
            self.stats.heuristic_skips,
            if self.relaxed_fallback { " (relaxed fallback: heuristic off)" } else { "" },
        );
        let mut level = 0usize;
        for s in &self.subsets {
            if s.level != level {
                level = s.level;
                let _ = writeln!(out, "level {level} ({level}-relation subsets):");
            }
            let _ = writeln!(
                out,
                "  {{{}}}: generated={} pruned={} surviving={}",
                s.tables.join(", "),
                s.generated,
                s.pruned,
                s.surviving,
            );
            for e in &s.entries {
                let order =
                    if e.order.is_empty() { "any".to_string() } else { format!("{:?}", e.order) };
                let _ = writeln!(
                    out,
                    "    order={order}: cost={:.1} rows={:.1} {}",
                    e.total, e.rows, e.shape
                );
            }
        }
        out
    }
}

/// Dense per-subset solution store: `slots[key id]` is the cheapest plan
/// with that interned order key (`slots[0]` = cheapest overall).
type SlotStore = Box<[Option<NodeId>]>;

/// Everything one DP run produced (internal).
struct SearchOutcome {
    best: PlanExpr,
    stats: EnumerationStats,
    arena: PlanArena,
    memo: HashMap<TableSet, SlotStore>,
    /// Interner snapshot that decodes the memo's slot indexes (the
    /// relaxed fallback re-runs with its own enumerator, so the outcome
    /// must carry the interner that produced it).
    keys: KeyInterner,
    /// Candidates generated per subset (sums to `stats.plans_considered`).
    generated: HashMap<TableSet, u64>,
    /// True if the heuristic stranded the full set and the search re-ran
    /// with `defer_cartesian` off.
    relaxed: bool,
}

/// One unit of DP work: extend subset `set` by joining relation `t` last.
/// A level's items are solved independently (each reads only the frozen
/// lower-level memo) and merged in item order.
struct WorkItem {
    set: TableSet,
    t: usize,
}

/// What solving one work item produced: the per-slot winners among this
/// item's candidate stream, the scratch nodes those winners reference,
/// and how many candidates the item generated.
struct ItemOut {
    slots: Vec<Option<(NodeId, f64)>>,
    scratch: Vec<ArenaNode>,
    generated: u64,
}

/// One DP level's frozen state, shared with the pool workers while the
/// level runs: the work items, the arena nodes and memo built by the
/// levels below (read-only), a claim counter, and the result sink. The
/// main thread moves the state in, workers claim items off `next`, and
/// once every worker signals done the state is moved back out.
struct LevelShared {
    items: Vec<WorkItem>,
    nodes: Vec<ArenaNode>,
    memo: HashMap<TableSet, SlotStore>,
    next: AtomicUsize,
    results: Mutex<Vec<(usize, ItemOut)>>,
}

/// Pool coordination state: a generation counter workers spin on, the
/// published level, and done/dead counters. A level's handoff must cost
/// well under the level's work (tens of microseconds), so workers
/// busy-wait on `seq` instead of blocking on a channel — a futex wake per
/// worker per level would dominate the search. The pool only lives for
/// one `run_search`, so the spinning is bounded by the search itself.
struct PoolShared {
    /// Bumped to publish a new level (and once more at shutdown).
    seq: AtomicUsize,
    /// Set (before the final `seq` bump) when the pool is dropped.
    shutdown: AtomicBool,
    /// Workers that finished the current generation's items.
    done: AtomicUsize,
    /// Workers that died unwinding; excused from every later generation.
    dead: AtomicUsize,
    /// The current level, present from publish until every live worker
    /// reports done.
    level: Mutex<Option<Arc<LevelShared>>>,
}

/// Bumps `dead` if its worker unwinds, so the main thread never waits on
/// a done signal that cannot come. The worker's per-level state drops
/// first (locals unwind before this outer guard), so its
/// `Arc<LevelShared>` clone is already released by then.
struct DeathNotice<'a> {
    dead: &'a AtomicUsize,
    armed: bool,
}

impl Drop for DeathNotice<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.dead.fetch_add(1, std::sync::atomic::Ordering::Release);
        }
    }
}

/// One round of a wait spin: cheap pause hints first, then polite yields
/// so an oversubscribed machine still makes progress.
fn wait_spin(spins: &mut u32) {
    *spins += 1;
    if *spins < 200 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// A per-search pool of scoped worker threads. Each level publishes an
/// [`Arc<LevelShared>`] and bumps the generation counter; workers wake
/// off their spin, race the main thread for items, and report done.
/// Dropping the pool flags shutdown, ending the workers before the scope
/// joins them.
struct WorkerPool {
    shared: Arc<PoolShared>,
    workers: usize,
}

impl WorkerPool {
    /// Spawn `n_workers` scoped threads that serve levels until shutdown.
    /// Each worker keeps one [`AccessCache`] for the whole search (its
    /// entries are pure functions of the query, so reuse across levels is
    /// sound) and drops its `Arc` clone *before* reporting done, so the
    /// main thread can reclaim the level state. Results are batched into
    /// one sink push per worker per level.
    fn start<'scope>(
        e: &'scope Enumerator<'scope>,
        scope: &'scope std::thread::Scope<'scope, '_>,
        n_workers: usize,
    ) -> WorkerPool {
        use std::sync::atomic::Ordering;
        use std::sync::PoisonError;
        let shared = Arc::new(PoolShared {
            seq: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            done: AtomicUsize::new(0),
            dead: AtomicUsize::new(0),
            level: Mutex::new(None),
        });
        for _ in 0..n_workers {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                let mut notice = DeathNotice { dead: &shared.dead, armed: true };
                let mut cache = AccessCache::new(e.ctx.query.factors.len());
                let mut last = 0usize;
                let mut spins = 0u32;
                loop {
                    let s = shared.seq.load(Ordering::Acquire);
                    if s == last {
                        wait_spin(&mut spins);
                        continue;
                    }
                    spins = 0;
                    if shared.shutdown.load(Ordering::Acquire) {
                        break;
                    }
                    last = s;
                    let level = shared.level.lock().unwrap_or_else(PoisonError::into_inner).clone();
                    if let Some(level) = level {
                        let mut local: Vec<(usize, ItemOut)> = Vec::new();
                        loop {
                            let i = level.next.fetch_add(1, Ordering::Relaxed);
                            if i >= level.items.len() {
                                break;
                            }
                            let out = e.solve_item(
                                &level.items[i],
                                &level.nodes,
                                &level.memo,
                                &mut cache,
                            );
                            local.push((i, out));
                        }
                        if !local.is_empty() {
                            level
                                .results
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .extend(local);
                        }
                        drop(level);
                    }
                    shared.done.fetch_add(1, Ordering::Release);
                }
                notice.armed = false;
            });
        }
        WorkerPool { shared, workers: n_workers }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        use std::sync::atomic::Ordering;
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.seq.fetch_add(1, Ordering::Release);
    }
}

/// Worker-local memo for [`access_paths`]: its output is a pure function
/// of `(table, applicable factor set)` — a factor is applicable exactly
/// when all its non-local operand tables are available, which also makes
/// every probe operand resolvable — so candidates are keyed by the
/// factor bitmask and reused across subsets. Disabled for blocks with
/// more than 64 factors (no bitmask; correctness falls back to direct
/// calls).
struct AccessCache {
    map: HashMap<(usize, u64), Rc<Vec<AccessCandidate>>>,
    enabled: bool,
}

impl AccessCache {
    fn new(n_factors: usize) -> Self {
        AccessCache { map: HashMap::new(), enabled: n_factors <= 64 }
    }

    fn paths(
        &mut self,
        ctx: &PlanCtx<'_>,
        t: usize,
        available: TableSet,
    ) -> Rc<Vec<AccessCandidate>> {
        if !self.enabled {
            return Rc::new(access_paths(ctx, t, available));
        }
        let me = TableSet::single(t);
        let mut mask = 0u64;
        for (i, f) in ctx.query.factors.iter().enumerate() {
            if f.tables.contains(t) && f.tables.minus(me).is_subset_of(available) {
                mask |= 1u64 << i;
            }
        }
        self.map
            .entry((t, mask))
            .or_insert_with(|| Rc::new(access_paths(ctx, t, available)))
            .clone()
    }
}

/// Per-item candidate scaffolding shared by every outer plan of the item:
/// the inner access-path nodes (pushed once, referenced per join) and the
/// merge-key variants with their residual factor lists.
struct ItemScaffold {
    rows_out: f64,
    /// Nested-loop inners: scratch node + buffer-resident page cap.
    probes: Vec<(NodeId, Option<f64>)>,
    merges: Vec<MergeScaffold>,
}

struct MergeScaffold {
    outer_col: ColId,
    inner_col: ColId,
    /// Interned key of a sort on `outer_col` (for unsorted outers).
    outer_sort_key: KeyId,
    /// Merge inner variants: scratch node + residual factors.
    inner_variants: Vec<(NodeId, Vec<usize>)>,
}

/// The join-order enumerator for one query block.
pub struct Enumerator<'a> {
    pub ctx: PlanCtx<'a>,
    /// Frozen order-key interner (the key universe is closed: scan
    /// orders, single-class sort orders, and the empty key).
    keys: KeyInterner,
    /// Interned key of `[class c]` per equivalence class.
    class_keys: Vec<KeyId>,
    /// Interned key of each index's produced order, per FROM position
    /// (self-joins give the same index different keys per position).
    index_keys: HashMap<(usize, u32), KeyId>,
}

impl<'a> Enumerator<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a BoundQuery, config: OptimizerConfig) -> Self {
        let ctx = PlanCtx::new(catalog, query, config);
        let mut keys = KeyInterner::new();
        let class_keys: Vec<KeyId> =
            (0..ctx.orders.class_count()).map(|c| keys.intern(vec![c])).collect();
        let mut index_keys = HashMap::new();
        for (t, bt) in query.tables.iter().enumerate() {
            if let Some(rel) = catalog.relation(bt.rel) {
                for idx in catalog.indexes_on(rel.id) {
                    let cols: Vec<ColId> = idx.key_cols.iter().map(|&c| ColId::new(t, c)).collect();
                    index_keys.insert((t, idx.id), keys.intern(ctx.orders.order_key(&cols)));
                }
            }
        }
        keys.freeze(&ctx.orders);
        Enumerator { ctx, keys, class_keys, index_keys }
    }

    /// Run the DP search and also return the full solution table — the
    /// paper's "tree of possible solutions" — for the Figure 2-6 search
    /// tree dumps. Entries are sorted by subset then order key.
    pub fn best_plan_with_tree(&self) -> (PlanExpr, EnumerationStats, Vec<SubsetReport>) {
        let o = self.run_search();
        let mut reports: Vec<SubsetReport> = o
            .memo
            .iter()
            .map(|(&set, slots)| {
                let mut entries: Vec<(OrderKey, PlanExpr)> = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(kid, slot)| {
                        slot.map(|id| (o.keys.get(dense_id(kid)).clone(), o.arena.materialize(id)))
                    })
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                SubsetReport { set, entries }
            })
            .collect();
        reports.sort_by_key(|r| (r.set.len(), r.set.0));
        (o.best, o.stats, reports)
    }

    /// Run the DP search and return the cheapest complete plan (with a
    /// final sort appended if the required order could not be produced
    /// more cheaply by an ordered plan — §4's "cheapest of these
    /// alternatives").
    pub fn best_plan(&self) -> (PlanExpr, EnumerationStats) {
        let o = self.run_search();
        (o.best, o.stats)
    }

    /// Run the DP search and additionally return the [`SearchTrace`]:
    /// per-subset candidate generation, pruning, and surviving slots.
    pub fn best_plan_traced(&self) -> (PlanExpr, EnumerationStats, SearchTrace) {
        let o = self.run_search();
        let mut subsets: Vec<SubsetTrace> = o
            .memo
            .iter()
            .map(|(&set, slots)| {
                let mut entries: Vec<(OrderKey, PlanExpr)> = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(kid, slot)| {
                        slot.map(|id| (o.keys.get(dense_id(kid)).clone(), o.arena.materialize(id)))
                    })
                    .collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                // Distinct plans: the cheapest-overall slot usually aliases
                // one of the order slots; count each stored plan once.
                let mut distinct: Vec<&PlanExpr> = Vec::new();
                for (_, p) in &entries {
                    if !distinct.contains(&p) {
                        distinct.push(p);
                    }
                }
                let surviving = distinct.len() as u64;
                let generated = o.generated.get(&set).copied().unwrap_or(0);
                SubsetTrace {
                    set,
                    tables: set
                        .iter()
                        .map(|t| {
                            self.ctx
                                .query
                                .tables
                                .get(t)
                                .map(|bt| bt.name.clone())
                                .unwrap_or_else(|| format!("T{t}"))
                        })
                        .collect(),
                    level: set.len(),
                    generated,
                    pruned: generated.saturating_sub(surviving),
                    surviving,
                    entries: entries
                        .into_iter()
                        .map(|(order, p)| TraceEntry {
                            order,
                            total: self.ctx.model.total(p.cost),
                            rows: p.rows,
                            shape: self.shape(&p),
                        })
                        .collect(),
                }
            })
            .collect();
        // Sort by (level, subset bit pattern): a pure integer key, cheaper
        // and better-defined than the old sort by cloned table-name lists
        // (which ordered subsets alphabetically, not by FROM position).
        subsets.sort_by_key(|s| (s.level, s.set.0));
        let trace = SearchTrace { subsets, stats: o.stats, relaxed_fallback: o.relaxed };
        (o.best, o.stats, trace)
    }

    /// Compact one-line plan shape for trace entries.
    fn shape(&self, p: &PlanExpr) -> String {
        match &p.node {
            crate::plan::PlanNode::Scan(s) => {
                let name = self
                    .ctx
                    .query
                    .tables
                    .get(s.table)
                    .map(|bt| bt.name.clone())
                    .unwrap_or_else(|| format!("T{}", s.table));
                match &s.access {
                    crate::plan::Access::Segment => name,
                    crate::plan::Access::Index { index, .. } => {
                        let iname = self
                            .ctx
                            .catalog
                            .index(*index)
                            .map(|i| i.name.clone())
                            .unwrap_or_else(|| format!("#{index}"));
                        format!("{name}({iname})")
                    }
                }
            }
            crate::plan::PlanNode::NestedLoop { outer, inner } => {
                format!("({} \u{22c8}nl {})", self.shape(outer), self.shape(inner))
            }
            crate::plan::PlanNode::Merge { outer, inner, .. } => {
                format!("({} \u{22c8}m {})", self.shape(outer), self.shape(inner))
            }
            crate::plan::PlanNode::Sort { input, .. } => {
                format!("sort({})", self.shape(input))
            }
        }
    }

    // ---- candidate generation (shared by DP and oracle paths) ------------

    /// Interned [`KeyId`]s are dense indexes into per-subset slot arrays.
    fn slot_index(key: KeyId) -> usize {
        key as usize
    }

    /// Interned order key of a scan candidate.
    fn scan_key(&self, cand: &AccessCandidate) -> KeyId {
        match &cand.scan.access {
            crate::plan::Access::Segment => EMPTY_KEY,
            crate::plan::Access::Index { index, .. } => {
                self.index_keys.get(&(cand.scan.table, *index)).copied().unwrap_or(EMPTY_KEY)
            }
        }
    }

    /// Interned key of an order on exactly `[col]`.
    fn class_key(&self, col: ColId) -> KeyId {
        self.ctx.orders.class_of(col).map(|c| self.class_keys[c]).unwrap_or(EMPTY_KEY)
    }

    fn push_scan(&self, wa: &mut WorkArena<'_>, cand: &AccessCandidate) -> NodeId {
        wa.push(ArenaNode {
            kind: NodeKind::Scan { scan: cand.scan.clone(), order: cand.order.clone() },
            cost: cand.cost,
            rows: cand.out_rows,
            key: self.scan_key(cand),
            count: 1,
        })
    }

    fn push_sort(
        &self,
        wa: &mut WorkArena<'_>,
        input: NodeId,
        keys: Vec<ColId>,
        width: f64,
        key: KeyId,
    ) -> NodeId {
        let (cost, rows, count) = {
            let n = wa.node(input);
            (sort_cost(n.cost, n.rows, width), n.rows, n.count + 1)
        };
        // DP-interior sorts (merge-join inputs, single-column keys) are
        // always whole-input sorts: a covered single-column prefix means
        // the caller uses the input as-is instead of sorting. Partial
        // sorts enter at required-order enforcement only.
        wa.push(ArenaNode {
            kind: NodeKind::Sort { input, keys, sorted_prefix: 0 },
            cost,
            rows,
            key,
            count,
        })
    }

    /// Build the per-item scaffolding: nested-loop inners pushed once and
    /// merge variants with residuals, shared across every outer plan.
    #[allow(clippy::too_many_arguments)]
    fn build_scaffold(
        &self,
        wa: &mut WorkArena<'_>,
        t: usize,
        set: TableSet,
        s_prime: TableSet,
        rows_out: f64,
        probe: &[AccessCandidate],
        local: &[AccessCandidate],
    ) -> ItemScaffold {
        let probes: Vec<(NodeId, Option<f64>)> = probe
            .iter()
            .map(|cand| (self.push_scan(wa, cand), self.inner_footprint(t, cand)))
            .collect();
        // Local scan nodes are pushed lazily, once, and shared across the
        // merge keys that use them.
        let mut local_nodes: Vec<Option<NodeId>> = vec![None; local.len()];
        let mut merges = Vec::new();
        for (fidx, outer_col, inner_col) in self.merge_keys(t, s_prime) {
            let mut inner_variants: Vec<(NodeId, Vec<usize>)> = Vec::new();
            // Inner side: an ordered access path on the join column (local
            // predicates only), or sort the cheapest local path.
            for (ci, cand) in local.iter().enumerate() {
                if cand.order.first() == Some(&inner_col) {
                    let node = *local_nodes[ci].get_or_insert_with(|| self.push_scan(wa, cand));
                    let mut applied = cand.applied.clone();
                    applied.push(fidx);
                    inner_variants.push((node, self.residual_factors(t, set, &applied)));
                }
            }
            if let Some((ci, cheapest)) = local.iter().enumerate().min_by(|a, b| {
                self.ctx.model.total(a.1.cost).total_cmp(&self.ctx.model.total(b.1.cost))
            }) {
                let node = *local_nodes[ci].get_or_insert_with(|| self.push_scan(wa, cheapest));
                let sorted = self.push_sort(
                    wa,
                    node,
                    vec![inner_col],
                    self.ctx.width(t),
                    self.class_key(inner_col),
                );
                let mut applied = cheapest.applied.clone();
                applied.push(fidx);
                inner_variants.push((sorted, self.residual_factors(t, set, &applied)));
            }
            merges.push(MergeScaffold {
                outer_col,
                inner_col,
                outer_sort_key: self.class_key(outer_col),
                inner_variants,
            });
        }
        ItemScaffold { rows_out, probes, merges }
    }

    /// Residual factors of a merge: every factor newly in scope that the
    /// inner scan and merge key do not already enforce.
    fn residual_factors(&self, t: usize, set: TableSet, applied: &[usize]) -> Vec<usize> {
        self.ctx
            .query
            .factors
            .iter()
            .enumerate()
            .filter(|(i, f)| {
                !f.tables.is_empty()
                    && f.tables.contains(t)
                    && f.tables.is_subset_of(set)
                    && !applied.contains(i)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Generate every way to join relation `t` (the inner) to one outer
    /// plan — nested loops over every inner access path, and merging
    /// scans per equi-join predicate — calling `emit` per candidate, in
    /// the same order the tree-cloning implementation produced them.
    fn extend_outer(
        &self,
        wa: &mut WorkArena<'_>,
        sc: &ItemScaffold,
        s_prime: TableSet,
        outer: NodeId,
        emit: &mut impl FnMut(&mut WorkArena<'_>, NodeId),
    ) {
        // ---- nested loops ------------------------------------------------
        for &(inner, cap) in &sc.probes {
            let (cost, key, count) = {
                let o = wa.node(outer);
                let i = wa.node(inner);
                (nested_loop_cost(o.cost, o.rows, i.cost, cap), o.key, o.count + i.count + 1)
            };
            let id = wa.push(ArenaNode {
                kind: NodeKind::NestedLoop { outer, inner },
                cost,
                rows: sc.rows_out,
                key,
                count,
            });
            emit(wa, id);
        }
        // ---- merging scans -----------------------------------------------
        for m in &sc.merges {
            // Outer side: use as-is when already ordered on the join
            // column's class, otherwise sort the composite.
            let outer_ready =
                self.keys.leads_with(wa.node(outer).key, self.ctx.orders.class_of(m.outer_col));
            let outer_variant = if outer_ready {
                outer
            } else {
                self.push_sort(
                    wa,
                    outer,
                    vec![m.outer_col],
                    self.ctx.composite_width(s_prime),
                    m.outer_sort_key,
                )
            };
            for (inner, residual) in &m.inner_variants {
                let (cost, key, count) = {
                    let o = wa.node(outer_variant);
                    let i = wa.node(*inner);
                    (merge_cost(o.cost, i.cost), o.key, o.count + i.count + 1)
                };
                let id = wa.push(ArenaNode {
                    kind: NodeKind::Merge {
                        outer: outer_variant,
                        inner: *inner,
                        outer_key: m.outer_col,
                        inner_key: m.inner_col,
                        residual: residual.clone(),
                    },
                    cost,
                    rows: sc.rows_out,
                    key,
                    count,
                });
                emit(wa, id);
            }
        }
    }

    /// Offer a candidate to an item's slot store: it may become the
    /// cheapest plan overall (slot 0) and/or the cheapest for its
    /// interesting-order class. Ties keep the earlier candidate, exactly
    /// like the sequential `consider` always has.
    fn consider(
        &self,
        wa: &WorkArena<'_>,
        slots: &mut [Option<(NodeId, f64)>],
        id: NodeId,
        generated: &mut u64,
    ) {
        *generated += 1;
        let node = wa.node(id);
        let key = if self.ctx.config.interesting_orders { node.key } else { EMPTY_KEY };
        let total = self.ctx.model.total(node.cost);
        if key != EMPTY_KEY {
            match slots[Self::slot_index(key)] {
                Some((_, best)) if best <= total => {}
                _ => slots[Self::slot_index(key)] = Some((id, total)),
            }
        }
        match slots[Self::slot_index(EMPTY_KEY)] {
            Some((_, best)) if best <= total => {}
            _ => slots[Self::slot_index(EMPTY_KEY)] = Some((id, total)),
        }
    }

    /// Solve one work item against the frozen lower-level memo: generate
    /// this (subset, extension)'s candidate stream and keep the per-slot
    /// winners. Pure function of the item — safe to run on any worker.
    fn solve_item(
        &self,
        item: &WorkItem,
        main: &[ArenaNode],
        memo: &HashMap<TableSet, SlotStore>,
        cache: &mut AccessCache,
    ) -> ItemOut {
        let mut wa = WorkArena::new(main);
        let mut slots: Vec<Option<(NodeId, f64)>> = vec![None; self.keys.len()];
        let mut generated = 0u64;
        if item.set.len() == 1 {
            // Level 1: every access path for the single relation.
            let local = cache.paths(&self.ctx, item.t, TableSet::EMPTY);
            for cand in local.iter() {
                let id = self.push_scan(&mut wa, cand);
                self.consider(&wa, &mut slots, id, &mut generated);
            }
        } else {
            let s_prime = item.set.minus(TableSet::single(item.t));
            if let Some(outer_slots) = memo.get(&s_prime) {
                let rows_out = self.ctx.subset_rows(item.set);
                let probe = cache.paths(&self.ctx, item.t, s_prime);
                let local = cache.paths(&self.ctx, item.t, TableSet::EMPTY);
                let sc = self
                    .build_scaffold(&mut wa, item.t, item.set, s_prime, rows_out, &probe, &local);
                for outer in outer_slots.iter().flatten().copied() {
                    self.extend_outer(&mut wa, &sc, s_prime, outer, &mut |wa, id| {
                        self.consider(wa, &mut slots, id, &mut generated);
                    });
                }
            }
        }
        ItemOut { slots, scratch: wa.local, generated }
    }

    /// Run one level's items on the pool: freeze the level's state into an
    /// `Arc`, publish it to the workers, claim items on this thread too,
    /// then recover the state once every live worker reports done.
    /// Results are re-sorted by item index, so the output is the same
    /// vector, in the same order, as the sequential path produces.
    fn run_level_pooled(
        &self,
        pool: &WorkerPool,
        items: Vec<WorkItem>,
        nodes: Vec<ArenaNode>,
        memo: HashMap<TableSet, SlotStore>,
        cache: &mut AccessCache,
    ) -> (Vec<ItemOut>, Vec<WorkItem>, Vec<ArenaNode>, HashMap<TableSet, SlotStore>) {
        use std::sync::atomic::Ordering;
        use std::sync::PoisonError;
        let shared = Arc::new(LevelShared {
            items,
            nodes,
            memo,
            next: AtomicUsize::new(0),
            results: Mutex::new(Vec::new()),
        });
        // Publish: slot and done-reset strictly before the seq bump the
        // workers gate on.
        *pool.shared.level.lock().unwrap_or_else(PoisonError::into_inner) =
            Some(Arc::clone(&shared));
        pool.shared.done.store(0, Ordering::Release);
        pool.shared.seq.fetch_add(1, Ordering::Release);
        // This thread works the queue too (threads = workers + 1), with
        // its results batched like the workers'.
        let mut local: Vec<(usize, ItemOut)> = Vec::new();
        loop {
            let i = shared.next.fetch_add(1, Ordering::Relaxed);
            if i >= shared.items.len() {
                break;
            }
            let out = self.solve_item(&shared.items[i], &shared.nodes, &shared.memo, cache);
            local.push((i, out));
        }
        if !local.is_empty() {
            shared.results.lock().unwrap_or_else(PoisonError::into_inner).extend(local);
        }
        // Wait until every worker still alive has finished this level. A
        // worker that died bumped `dead` during its unwind, after its
        // per-level state (including the Arc clone) was already dropped.
        let mut spins = 0u32;
        loop {
            let dead = pool.shared.dead.load(Ordering::Acquire);
            if pool.shared.done.load(Ordering::Acquire) >= pool.workers.saturating_sub(dead) {
                break;
            }
            wait_spin(&mut spins);
        }
        *pool.shared.level.lock().unwrap_or_else(PoisonError::into_inner) = None;
        // Workers drop their Arc clone before reporting done, so this
        // unwrap spins at most briefly on the last decrement's visibility.
        let mut shared = shared;
        let level = loop {
            match Arc::try_unwrap(shared) {
                Ok(s) => break s,
                Err(again) => {
                    shared = again;
                    std::hint::spin_loop();
                }
            }
        };
        let mut results = level.results.into_inner().unwrap_or_else(PoisonError::into_inner);
        results.sort_by_key(|r| r.0);
        (results.into_iter().map(|(_, r)| r).collect(), level.items, level.nodes, level.memo)
    }

    /// The DP proper: build every level's solutions, sequentially or on
    /// the worker pool. Returns the arena, memo, and per-subset generated
    /// counts; `stats` accumulates the run's counters.
    fn search_levels(
        &self,
        stats: &mut EnumerationStats,
        pool: Option<&WorkerPool>,
    ) -> (PlanArena, HashMap<TableSet, SlotStore>, HashMap<TableSet, u64>) {
        let n = self.ctx.query.tables.len();
        let mut arena = PlanArena::default();
        let mut memo: HashMap<TableSet, SlotStore> = HashMap::new();
        let mut generated: HashMap<TableSet, u64> = HashMap::new();
        // One access-path cache for the whole search (pure memoization, so
        // reuse across levels cannot change any candidate stream).
        let mut cache = AccessCache::new(self.ctx.query.factors.len());

        // ---- level by level (Figs. 2-6): singles, then larger subsets ----
        for k in 1..=n {
            let mut subsets: Vec<TableSet> = Vec::new();
            let mut items: Vec<WorkItem> = Vec::new();
            if k == 1 {
                for t in 0..n {
                    subsets.push(TableSet::single(t));
                    items.push(WorkItem { set: TableSet::single(t), t });
                }
            } else {
                for set in TableSet::subsets_of_size(n, k) {
                    subsets.push(set);
                    // Which relations may join last? The paper's heuristic:
                    // only orderings "which have join predicates relating
                    // the inner relation to the other relations already
                    // participating in the join" — a Cartesian extension is
                    // allowed only when nothing connected could extend the
                    // outer instead, so products are "performed as late in
                    // the join sequence as possible".
                    let members: Vec<usize> = set.iter().collect();
                    let chosen: Vec<usize> = if self.ctx.config.defer_cartesian {
                        let ok: Vec<usize> = members
                            .iter()
                            .copied()
                            .filter(|&t| self.extension_allowed(t, set.minus(TableSet::single(t))))
                            .collect();
                        stats.heuristic_skips += (members.len() - ok.len()) as u64;
                        ok
                    } else {
                        members
                    };
                    for t in chosen {
                        items.push(WorkItem { set, t });
                    }
                }
            }
            stats.subsets_examined += subsets.len() as u64;

            // Scratch ids minted by the items start at the frozen arena
            // length; capture it before commits grow the arena.
            let base = dense_id(arena.len());
            let (results, items) = match pool {
                Some(pool) if items.len() > 1 => {
                    let nodes = std::mem::take(&mut arena.nodes);
                    let taken = std::mem::take(&mut memo);
                    let (results, items, nodes, memo_back) =
                        self.run_level_pooled(pool, items, nodes, taken, &mut cache);
                    arena.nodes = nodes;
                    memo = memo_back;
                    (results, items)
                }
                _ => {
                    let results = items
                        .iter()
                        .map(|it| self.solve_item(it, &arena.nodes, &memo, &mut cache))
                        .collect::<Vec<_>>();
                    (results, items)
                }
            };

            // ---- deterministic merge + commit, subset by subset ----------
            let mut item_idx = 0usize;
            for &set in &subsets {
                let mut merged: Vec<Option<(usize, NodeId, f64)>> = vec![None; self.keys.len()];
                let mut gen = 0u64;
                while item_idx < items.len() && items[item_idx].set == set {
                    let r = &results[item_idx];
                    gen += r.generated;
                    for (kid, slot) in r.slots.iter().enumerate() {
                        if let Some((node, total)) = slot {
                            // Replace only when strictly cheaper: each
                            // item's slot already holds the first minimum
                            // of its own stream, so folding in item order
                            // reproduces the sequential first-minimum.
                            match merged[kid] {
                                Some((_, _, best)) if best <= *total => {}
                                _ => merged[kid] = Some((item_idx, *node, *total)),
                            }
                        }
                    }
                    item_idx += 1;
                }
                let mut remap: HashMap<(usize, NodeId), NodeId> = HashMap::new();
                let committed: SlotStore = merged
                    .iter()
                    .map(|slot| {
                        slot.map(|(item, node, _)| {
                            arena.commit(&results[item].scratch, base, item, node, &mut remap)
                        })
                    })
                    .collect();
                stats.plans_considered += gen;
                generated.insert(set, gen);
                memo.insert(set, committed);
            }
        }
        (arena, memo, generated)
    }

    fn run_search(&self) -> SearchOutcome {
        let started = std::time::Instant::now();
        let mut stats = EnumerationStats::default();
        let n = self.ctx.query.tables.len();
        assert!(n > 0, "query block has no tables");
        let threads = self.ctx.config.threads.max(1);
        let (arena, memo, generated) = if threads > 1 {
            // One pool per search: `threads - 1` scoped workers plus this
            // thread, fed a frozen snapshot per level. Dropping the pool
            // closes the work channels and the scope joins the workers.
            std::thread::scope(|scope| {
                let pool = WorkerPool::start(self, scope, threads - 1);
                let out = self.search_levels(&mut stats, Some(&pool));
                drop(pool);
                out
            })
        } else {
            self.search_levels(&mut stats, None)
        };

        // ---- final choice: required order vs. cheapest + sort -------------
        let full = TableSet::full(n);
        if memo.get(&full).map(|s| s.iter().all(Option::is_none)).unwrap_or(true) {
            // Degenerate join graphs can strand the heuristic; fall back to
            // the exhaustive pairing (correctness over pruning).
            debug_assert!(self.ctx.config.defer_cartesian, "full set must be solvable");
            let relaxed = Enumerator::new(
                self.ctx.catalog,
                self.ctx.query,
                OptimizerConfig { defer_cartesian: false, ..self.ctx.config },
            );
            let mut outcome = relaxed.run_search();
            outcome.relaxed = true;
            return outcome;
        }
        // audit:allow(no-unwrap) — run_search falls back to the relaxed pass above precisely so
        // the full set always has at least one solution
        let sols = memo.get(&full).expect("full set always has solutions");
        stats.plans_kept = memo.values().map(|s| s.iter().flatten().count() as u64).sum();
        stats.solution_bytes = memo
            .values()
            .flat_map(|s| s.iter().flatten())
            .map(|&id| u64::from(arena.node(id).count) * PLAN_EXPR_BYTES)
            .sum();

        let required = &self.ctx.orders.required;
        let best = if required.is_empty() {
            // audit:allow(no-unwrap) — consider() always fills the empty slot when any slot fills
            let id =
                sols[Self::slot_index(EMPTY_KEY)].expect("cheapest-overall slot always filled");
            arena.materialize(id)
        } else {
            let ordered = sols
                .iter()
                .enumerate()
                .filter(|(kid, _)| self.keys.satisfies_required(dense_id(*kid)))
                .filter_map(|(_, slot)| *slot)
                .min_by(|&a, &b| {
                    self.ctx
                        .model
                        .total(arena.node(a).cost)
                        .total_cmp(&self.ctx.model.total(arena.node(b).cost))
                });
            // audit:allow(no-unwrap) — consider() always fills the empty slot when any slot fills
            let unordered =
                sols[Self::slot_index(EMPTY_KEY)].expect("cheapest-overall slot always filled");
            let width = self.ctx.composite_width(full);
            let keys_cols = self.ctx.query.required_order();
            // Enforcement candidate: a full sort over the cheapest plan
            // overall…
            let mut sorted = sort_plan(arena.materialize(unordered), keys_cols.clone(), width);
            // …or a partial sort over any slot whose order already covers
            // a non-empty prefix of the requirement — the plan may cost
            // more to produce but only within-run sorting remains. Only
            // the cheapest plan per key class needs considering (the
            // enforcement delta is a per-key constant), and slots are
            // visited in dense-id order with a strict comparison, so the
            // choice is deterministic. A full sort over a non-empty slot
            // never helps: the empty slot is the cheapest overall and the
            // full-sort delta is key-independent.
            for (kid, slot) in sols.iter().enumerate() {
                let kid = dense_id(kid);
                let Some(id) = *slot else { continue };
                if self.keys.satisfies_required(kid) {
                    continue;
                }
                let prefix = self.keys.required_prefix(kid);
                if prefix == 0 {
                    continue;
                }
                let n = arena.node(id);
                let runs = self.ctx.run_count(&keys_cols[..prefix], n.rows);
                let cost = partial_sort_cost(n.cost, n.rows, width, runs);
                if self.ctx.model.better(cost, sorted.cost) {
                    sorted = partial_sort_plan(
                        arena.materialize(id),
                        keys_cols.clone(),
                        prefix,
                        width,
                        runs,
                    );
                }
            }
            match ordered.map(|id| arena.materialize(id)) {
                Some(o) if self.ctx.model.better(o.cost, sorted.cost) => o,
                _ => sorted,
            }
        };
        stats.elapsed_micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
        SearchOutcome {
            best,
            stats,
            arena,
            memo,
            keys: self.keys.clone(),
            generated,
            relaxed: false,
        }
    }

    /// Exhaustively enumerate complete plans (no pruning, no heuristic),
    /// capped at `cap` plans per subset. Used by the §7 optimality
    /// experiment, which executes *every* plan and checks the optimizer
    /// picked the measured-best one.
    pub fn all_plans(&self, cap: usize) -> Vec<PlanExpr> {
        let n = self.ctx.query.tables.len();
        let mut arena = PlanArena::default();
        let mut memo: HashMap<TableSet, Vec<NodeId>> = HashMap::new();
        let mut cache = AccessCache::new(self.ctx.query.factors.len());
        for t in 0..n {
            let mut wa = WorkArena::new(&arena.nodes);
            let local = cache.paths(&self.ctx, t, TableSet::EMPTY);
            let ids: Vec<NodeId> = local.iter().map(|c| self.push_scan(&mut wa, c)).collect();
            let WorkArena { local: scratch, .. } = wa;
            arena.nodes.extend(scratch);
            memo.insert(TableSet::single(t), ids);
        }
        for k in 2..=n {
            for set in TableSet::subsets_of_size(n, k) {
                let rows_out = self.ctx.subset_rows(set);
                let mut refs: Vec<NodeId> = Vec::new();
                let mut wa = WorkArena::new(&arena.nodes);
                'extend: for t in set.iter() {
                    let s_prime = set.minus(TableSet::single(t));
                    let Some(outers) = memo.get(&s_prime) else { continue };
                    let probe = cache.paths(&self.ctx, t, s_prime);
                    let local = cache.paths(&self.ctx, t, TableSet::EMPTY);
                    let sc =
                        self.build_scaffold(&mut wa, t, set, s_prime, rows_out, &probe, &local);
                    for &outer in outers {
                        self.extend_outer(&mut wa, &sc, s_prime, outer, &mut |_, id| {
                            refs.push(id);
                        });
                        if refs.len() > cap {
                            break 'extend;
                        }
                    }
                }
                refs.truncate(cap);
                let WorkArena { local: scratch, .. } = wa;
                // Scratch ids were minted from the arena's frozen length,
                // so a wholesale append keeps every ref valid.
                arena.nodes.extend(scratch);
                memo.insert(set, refs);
            }
        }
        let complete: Vec<PlanExpr> = memo
            .remove(&TableSet::full(n))
            .unwrap_or_default()
            .into_iter()
            .map(|id| arena.materialize(id))
            .collect();
        // Apply the same required-order discipline as `best_plan`, so every
        // returned plan answers the query (including its ORDER BY /
        // GROUP BY) and measured costs are comparable.
        self.apply_required_order(complete)
    }

    /// Append the required-order enforcement to every plan that does not
    /// already satisfy it (shared by the oracle paths).
    fn apply_required_order(&self, plans: Vec<PlanExpr>) -> Vec<PlanExpr> {
        if self.ctx.orders.required.is_empty() {
            return plans;
        }
        let width = self.ctx.composite_width(TableSet::full(self.ctx.query.tables.len()));
        plans.into_iter().map(|p| self.enforce_required_order(p, width)).collect()
    }

    /// Cheapest enforcement of the required order on one plan: pass
    /// through when satisfied, otherwise the cheaper of a full sort and —
    /// when the plan's produced order covers a non-empty prefix of the
    /// requirement — a partial sort over the covered prefix. Applies the
    /// same pricing as `run_search`'s final choice, so the differential
    /// oracle compares like against like over the widened search space.
    fn enforce_required_order(&self, p: PlanExpr, width: f64) -> PlanExpr {
        let key = self.ctx.orders.order_key(&p.order);
        if self.ctx.orders.satisfies_required(&key) {
            return p;
        }
        let keys = self.ctx.query.required_order();
        let prefix = self.ctx.orders.common_prefix_with_required(&key);
        if prefix > 0 {
            let runs = self.ctx.run_count(&keys[..prefix], p.rows);
            let partial = partial_sort_cost(p.cost, p.rows, width, runs);
            let full = sort_cost(p.cost, p.rows, width);
            if self.ctx.model.better(partial, full) {
                return partial_sort_plan(p, keys, prefix, width, runs);
            }
        }
        sort_plan(p, keys, width)
    }

    /// Cheapest complete plan whose left-deep join sequence is exactly
    /// `order` (a permutation of the block's table positions). Every
    /// access path and join method is considered at each step, with none
    /// of the DP's interesting-order pruning; `cap` bounds the per-prefix
    /// frontier by keeping the `cap` cheapest prefixes. Truncation can
    /// lose the per-order optimum but never fabricates one — every
    /// surviving plan is complete and real, so the returned cost is
    /// always an upper bound the DP winner must meet or beat. Returns
    /// `None` if `order` is not a permutation of `0..n` or the frontier
    /// empties.
    pub fn best_plan_for_order(&self, order: &[usize], cap: usize) -> Option<PlanExpr> {
        let n = self.ctx.query.tables.len();
        if order.len() != n || order.iter().copied().collect::<TableSet>() != TableSet::full(n) {
            return None;
        }
        let mut arena = PlanArena::default();
        let mut cache = AccessCache::new(self.ctx.query.factors.len());
        let mut frontier: Vec<NodeId> = {
            let mut wa = WorkArena::new(&arena.nodes);
            let local = cache.paths(&self.ctx, order[0], TableSet::EMPTY);
            let ids: Vec<NodeId> = local.iter().map(|c| self.push_scan(&mut wa, c)).collect();
            let WorkArena { local: scratch, .. } = wa;
            arena.nodes.extend(scratch);
            ids
        };
        let mut joined = TableSet::single(order[0]);
        for &t in &order[1..] {
            let set = joined.union(TableSet::single(t));
            let rows_out = self.ctx.subset_rows(set);
            let probe = cache.paths(&self.ctx, t, joined);
            let local = cache.paths(&self.ctx, t, TableSet::EMPTY);
            let mut wa = WorkArena::new(&arena.nodes);
            let sc = self.build_scaffold(&mut wa, t, set, joined, rows_out, &probe, &local);
            let mut next: Vec<NodeId> = Vec::new();
            for &outer in &frontier {
                self.extend_outer(&mut wa, &sc, joined, outer, &mut |_, id| next.push(id));
            }
            if next.len() > cap {
                next.sort_by(|&a, &b| {
                    self.ctx
                        .model
                        .total(wa.node(a).cost)
                        .total_cmp(&self.ctx.model.total(wa.node(b).cost))
                });
                next.truncate(cap);
            }
            let WorkArena { local: scratch, .. } = wa;
            arena.nodes.extend(scratch);
            frontier = next;
            joined = set;
        }
        // Same required-order discipline as `best_plan` / `all_plans`.
        let complete: Vec<PlanExpr> =
            frontier.into_iter().map(|id| arena.materialize(id)).collect();
        self.apply_required_order(complete)
            .into_iter()
            .min_by(|a, b| self.ctx.model.total(a.cost).total_cmp(&self.ctx.model.total(b.cost)))
    }

    /// Buffer-resident footprint of an inner access path: the pages the
    /// repeated probes can touch in total (data pages plus the probed
    /// index's pages), if that fits in the buffer pool — the nested-loop
    /// analog of Table 2's "fits in the System R buffer" variants.
    fn inner_footprint(&self, t: usize, cand: &AccessCandidate) -> Option<f64> {
        let rel = self.ctx.relation(t);
        let pages = match &cand.scan.access {
            crate::plan::Access::Segment => rel.stats.segment_scan_pages(),
            crate::plan::Access::Index { index, .. } => {
                let nindx =
                    self.ctx.catalog.index(*index).map(|i| card_f64(i.stats.nindx)).unwrap_or(0.0);
                card_f64(rel.stats.tcard) + nindx
            }
        };
        (pages <= self.ctx.model.buffer_pages).then_some(pages)
    }

    /// Equi-join factors usable as the merge key between `t` and `s_prime`:
    /// returns `(factor, outer column, inner column)`.
    fn merge_keys(&self, t: usize, s_prime: TableSet) -> Vec<(usize, ColId, ColId)> {
        self.ctx
            .query
            .factors
            .iter()
            .enumerate()
            .filter_map(|(i, f)| {
                let (a, b) = f.equijoin?;
                if a.table == t && s_prime.contains(b.table) {
                    Some((i, b, a))
                } else if b.table == t && s_prime.contains(a.table) {
                    Some((i, a, b))
                } else {
                    None
                }
            })
            .collect()
    }

    /// The join-order heuristic's test for extending `s_prime` with `t`:
    /// allowed when a join predicate relates `t` to `s_prime`, or — the
    /// Cartesian case — when no relation at all is connected to `s_prime`,
    /// so the product cannot be deferred any further.
    fn extension_allowed(&self, t: usize, s_prime: TableSet) -> bool {
        if self.connected(t, s_prime) {
            return true;
        }
        let n = self.ctx.query.tables.len();
        !(0..n).any(|u| !s_prime.contains(u) && self.connected(u, s_prime))
    }

    /// Is `t` connected to `s_prime` by any join predicate? ("join orders
    /// which have join predicates relating the inner relation to the other
    /// relations already participating in the join", §5.)
    fn connected(&self, t: usize, s_prime: TableSet) -> bool {
        self.ctx.query.factors.iter().any(|f| f.tables.contains(t) && f.tables.intersects(s_prime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use crate::cost::CostModel;
    use crate::plan::{Access, PlanNode};
    use sysr_catalog::{ColumnMeta, IndexStats, RelStats};
    use sysr_rss::{ColType, Value};
    use sysr_sql::{parse_statement, Statement};

    /// The paper's Fig. 1 schema: EMP(NAME,DNO,JOB,SAL), DEPT(DNO,DNAME,
    /// LOC), JOB(JOB,TITLE), with indexes EMP.DNO, EMP.JOB, DEPT.DNO,
    /// JOB.JOB.
    fn fig1_catalog() -> Catalog {
        let mut cat = Catalog::new();
        let emp = cat
            .create_relation(
                "EMP",
                0,
                vec![
                    ColumnMeta::new("NAME", ColType::Str),
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("JOB", ColType::Int),
                    ColumnMeta::new("SAL", ColType::Float),
                ],
            )
            .unwrap();
        let dept = cat
            .create_relation(
                "DEPT",
                1,
                vec![
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("DNAME", ColType::Str),
                    ColumnMeta::new("LOC", ColType::Str),
                ],
            )
            .unwrap();
        let job = cat
            .create_relation(
                "JOB",
                2,
                vec![ColumnMeta::new("JOB", ColType::Int), ColumnMeta::new("TITLE", ColType::Str)],
            )
            .unwrap();
        cat.set_relation_stats(
            emp,
            RelStats { ncard: 10_000, tcard: 400, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            dept,
            RelStats { ncard: 100, tcard: 5, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            job,
            RelStats { ncard: 15, tcard: 1, pfrac: 1.0, avg_width: 24.0, valid: true },
        );
        cat.register_index(0, "EMP_DNO", emp, vec![1], false, false).unwrap();
        cat.register_index(1, "EMP_JOB", emp, vec![2], false, false).unwrap();
        cat.register_index(2, "DEPT_DNO", dept, vec![0], true, false).unwrap();
        cat.register_index(3, "JOB_JOB", job, vec![0], true, false).unwrap();
        for (id, icard, nindx) in [(0u32, 1000u64, 30u64), (1, 15, 28), (2, 100, 2), (3, 15, 1)] {
            cat.set_index_stats(
                id,
                IndexStats {
                    icard,
                    nindx,
                    leaf_pages: nindx.max(2) - 1,
                    low_key: Some(Value::Int(0)),
                    high_key: Some(Value::Int(icard as i64 - 1)),
                    valid: true,
                },
            );
        }
        cat
    }

    const FIG1_SQL: &str = "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
        WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
          AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

    fn best_for(cat: &Catalog, sql: &str, config: OptimizerConfig) -> (PlanExpr, EnumerationStats) {
        let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
        let q = bind_select(cat, &stmt).unwrap();
        let e = Enumerator::new(cat, &q, config);
        let (plan, stats) = e.best_plan();
        (plan, stats)
    }

    #[test]
    fn single_relation_picks_cheapest_path() {
        let cat = fig1_catalog();
        let (plan, stats) =
            best_for(&cat, "SELECT NAME FROM EMP WHERE DNO = 5", OptimizerConfig::default());
        let PlanNode::Scan(scan) = &plan.node else { panic!("expected scan") };
        assert!(
            matches!(&scan.access, Access::Index { index: 0, .. }),
            "DNO equal predicate should choose the DNO index: {plan:?}"
        );
        assert!(stats.plans_considered >= 3);
    }

    #[test]
    fn fig1_join_covers_all_three_tables() {
        let cat = fig1_catalog();
        let (plan, stats) = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        assert_eq!(plan.tables().len(), 3);
        assert_eq!(plan.join_count(), 2);
        assert!(stats.subsets_examined >= 6, "3 singles + 3 pairs + 1 triple minus skips");
        assert!(stats.plans_kept > 0 && stats.solution_bytes > 0);
    }

    #[test]
    fn heuristic_trades_search_for_possible_cost() {
        // The Cartesian-deferral heuristic shrinks the search ("the search
        // space can be reduced…"); it is a heuristic, so the unrestricted
        // search may find a plan at most as cheap — here it genuinely does
        // (two tiny filtered relations crossed, then probing EMP).
        let cat = fig1_catalog();
        let with = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        let without = best_for(
            &cat,
            FIG1_SQL,
            OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() },
        );
        let w = OptimizerConfig::default().w;
        assert!(without.0.cost.total(w) <= with.0.cost.total(w) + 1e-9);
        assert!(with.1.plans_considered < without.1.plans_considered);
        assert!(with.1.heuristic_skips > 0);
    }

    #[test]
    fn per_order_minimum_matches_relaxed_dp() {
        // Minimising best_plan_for_order over every permutation re-derives
        // the exhaustive optimum, which the relaxed DP must equal.
        let cat = fig1_catalog();
        let relaxed = OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() };
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let e = Enumerator::new(&cat, &q, relaxed);
        let (best, _) = e.best_plan();
        let model = CostModel::new(relaxed.w, relaxed.buffer_pages);
        let dp_total = model.total(best.cost);
        let orders: [[usize; 3]; 6] =
            [[0, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0]];
        let mut min_over_orders = f64::INFINITY;
        for order in &orders {
            let plan = e.best_plan_for_order(order, 100_000).expect("order plan");
            assert_eq!(plan.tables().len(), 3, "order {order:?} must cover all tables");
            let total = model.total(plan.cost);
            assert!(
                total >= dp_total - 1e-6,
                "order {order:?} plan ({total}) beat the DP winner ({dp_total})"
            );
            min_over_orders = min_over_orders.min(total);
        }
        assert!(
            (min_over_orders - dp_total).abs() <= 1e-6 * dp_total.abs().max(1.0),
            "best over all orders {min_over_orders} != DP winner {dp_total}"
        );
        // Malformed permutations are rejected, not mis-planned.
        assert!(e.best_plan_for_order(&[0, 1], 1000).is_none());
        assert!(e.best_plan_for_order(&[0, 1, 1], 1000).is_none());
    }

    #[test]
    fn cartesian_deferred_join_orders_excluded() {
        // With predicates EMP-DEPT and EMP-JOB (different EMP columns), the
        // heuristic must not join DEPT with JOB first (no predicate relates
        // them): exactly the paper's "T1-T3-T2 / T3-T1-T2 not considered".
        let cat = fig1_catalog();
        let (plan, _) = best_for(&cat, FIG1_SQL, OptimizerConfig::default());
        let order = plan.join_order();
        let d = order.iter().position(|&t| t == 1).unwrap();
        let j = order.iter().position(|&t| t == 2).unwrap();
        let e = order.iter().position(|&t| t == 0).unwrap();
        assert!(
            e < d || e < j,
            "EMP must participate before the second of DEPT/JOB joins: {order:?}"
        );
    }

    #[test]
    fn order_by_prefers_ordered_path_or_sorts() {
        let cat = fig1_catalog();
        let (plan, _) =
            best_for(&cat, "SELECT NAME FROM EMP ORDER BY DNO", OptimizerConfig::default());
        // Either an index-ordered scan on DNO or a sort over the segment
        // scan; both satisfy the order. With EMP at 400 pages vs index
        // (30 + 10000) unclustered, the sort may win — just verify order.
        let satisfied = match &plan.node {
            PlanNode::Scan(s) => matches!(&s.access, Access::Index { index: 0, .. }),
            PlanNode::Sort { keys, .. } => keys == &vec![ColId::new(0, 1)],
            _ => false,
        };
        assert!(satisfied, "plan must deliver DNO order: {plan:?}");
    }

    #[test]
    fn group_by_produces_required_order() {
        let cat = fig1_catalog();
        let (plan, _) = best_for(
            &cat,
            "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
            OptimizerConfig::default(),
        );
        let ok = match &plan.node {
            PlanNode::Scan(s) => matches!(&s.access, Access::Index { index: 0, .. }),
            PlanNode::Sort { keys, .. } => keys == &vec![ColId::new(0, 1)],
            _ => false,
        };
        assert!(ok, "{plan:?}");
    }

    #[test]
    fn merge_join_chosen_for_unindexed_large_join() {
        // Two relations without useful indexes on the join column: nested
        // loops would rescan the inner per outer tuple; merging scans sort
        // both once.
        let mut cat = Catalog::new();
        let a = cat
            .create_relation(
                "A",
                0,
                vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("PAD", ColType::Str)],
            )
            .unwrap();
        let b = cat
            .create_relation(
                "B",
                1,
                vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("PAD", ColType::Str)],
            )
            .unwrap();
        cat.set_relation_stats(
            a,
            RelStats { ncard: 5_000, tcard: 250, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.set_relation_stats(
            b,
            RelStats { ncard: 5_000, tcard: 250, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        let (plan, _) =
            best_for(&cat, "SELECT A.PAD FROM A, B WHERE A.K = B.K", OptimizerConfig::default());
        fn has_merge(p: &PlanExpr) -> bool {
            match &p.node {
                PlanNode::Merge { .. } => true,
                PlanNode::NestedLoop { outer, inner } => has_merge(outer) || has_merge(inner),
                PlanNode::Sort { input, .. } => has_merge(input),
                PlanNode::Scan(_) => false,
            }
        }
        assert!(has_merge(&plan), "expected a merge join: {plan:?}");
    }

    #[test]
    fn nested_loop_chosen_for_selective_indexed_inner() {
        // Small outer (DEPT restricted) probing EMP's DNO index: NL wins.
        let cat = fig1_catalog();
        let (plan, _) = best_for(
            &cat,
            "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND DEPT.DNAME = 'TOOLS'",
            OptimizerConfig::default(),
        );
        let PlanNode::NestedLoop { outer, inner } = &plan.node else {
            panic!("expected nested loop: {plan:?}")
        };
        // DEPT (selective) outer, EMP probed via DNO index.
        assert_eq!(outer.tables().iter().collect::<Vec<_>>(), vec![1]);
        let PlanNode::Scan(s) = &inner.node else { panic!() };
        assert!(matches!(&s.access, Access::Index { index: 0, .. }));
    }

    #[test]
    fn dp_without_heuristic_matches_exhaustive_minimum() {
        // Pruning per interesting-order class is lossless: the DP (with the
        // heuristic off) must find exactly the exhaustive minimum.
        let cat = fig1_catalog();
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let config = OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() };
        let e = Enumerator::new(&cat, &q, config);
        let (best, _) = e.best_plan();
        let all = e.all_plans(200_000);
        assert!(!all.is_empty());
        let w = config.w;
        let min = all.iter().map(|p| p.cost.total(w)).fold(f64::INFINITY, f64::min);
        assert!(
            (best.cost.total(w) - min).abs() < 1e-6,
            "DP best {} must match exhaustive min {min}",
            best.cost.total(w)
        );
    }

    #[test]
    fn interesting_orders_ablation_may_only_worsen() {
        let cat = fig1_catalog();
        let sql = "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO ORDER BY DNAME";
        let with = best_for(&cat, sql, OptimizerConfig::default());
        let without = best_for(
            &cat,
            sql,
            OptimizerConfig { interesting_orders: false, ..OptimizerConfig::default() },
        );
        let w = OptimizerConfig::default().w;
        assert!(with.0.cost.total(w) <= without.0.cost.total(w) + 1e-9);
    }

    #[test]
    fn eight_table_chain_enumerates_quickly() {
        // "Joins of 8 tables have been optimized in a few seconds" (on 1979
        // hardware); the shape holds — and modern hardware does it in well
        // under a second.
        let mut cat = Catalog::new();
        for i in 0..8 {
            let r = cat
                .create_relation(
                    &format!("T{i}"),
                    i,
                    vec![ColumnMeta::new("K", ColType::Int), ColumnMeta::new("FK", ColType::Int)],
                )
                .unwrap();
            cat.set_relation_stats(
                r,
                RelStats {
                    ncard: 1000 * (i as u64 + 1),
                    tcard: 50,
                    pfrac: 1.0,
                    avg_width: 20.0,
                    valid: true,
                },
            );
            cat.register_index(i, &format!("T{i}_K"), r, vec![0], true, false).unwrap();
            cat.set_index_stats(
                i,
                IndexStats {
                    icard: 1000 * (i as u64 + 1),
                    nindx: 5,
                    leaf_pages: 4,
                    low_key: Some(Value::Int(0)),
                    high_key: Some(Value::Int(999)),
                    valid: true,
                },
            );
        }
        let joins: Vec<String> = (0..7).map(|i| format!("T{i}.FK = T{}.K", i + 1)).collect();
        let sql = format!("SELECT T0.K FROM T0,T1,T2,T3,T4,T5,T6,T7 WHERE {}", joins.join(" AND "));
        let started = std::time::Instant::now();
        let (plan, stats) = best_for(&cat, &sql, OptimizerConfig::default());
        assert_eq!(plan.tables().len(), 8);
        assert!(stats.heuristic_skips > 0, "chain query must skip many extensions");
        assert!(started.elapsed().as_secs() < 10, "8-way enumeration took {:?}", started.elapsed());
    }

    #[test]
    fn trace_subsets_sorted_by_level_then_bit_pattern() {
        // The satellite bugfix: subsets must sort by the subset's bit
        // pattern (FROM-list position order), not by cloned table-name
        // lists (alphabetical). In Fig. 1, DEPT sorts before EMP by name
        // but EMP is FROM position 0, so bit order puts {EMP} first.
        let cat = fig1_catalog();
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let e = Enumerator::new(&cat, &q, OptimizerConfig::default());
        let (_, _, trace) = e.best_plan_traced();
        let keys: Vec<(usize, u64)> = trace.subsets.iter().map(|s| (s.level, s.set.0)).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "subsets must be ordered by (level, bits)");
        assert_eq!(trace.subsets[0].set, TableSet::single(0), "{{EMP}} (bit 0) comes first");
        assert_eq!(trace.subsets[0].tables, vec!["EMP".to_string()]);
        // The accounting identity still holds.
        assert_eq!(trace.generated(), trace.stats.plans_considered);
        assert_eq!(trace.pruned() + trace.surviving(), trace.stats.plans_considered);
    }

    #[test]
    fn parallel_search_is_bit_identical_to_sequential() {
        // The tentpole's determinism guarantee: plans, costs, stats, and
        // the full trace must match across thread counts.
        let cat = fig1_catalog();
        let sqls = [
            FIG1_SQL,
            "SELECT NAME FROM EMP WHERE DNO = 5",
            "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO ORDER BY DNAME",
            "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
        ];
        for sql in sqls {
            let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
            let q = bind_select(&cat, &stmt).unwrap();
            let mut outcomes = Vec::new();
            for threads in [1usize, 2, 4] {
                let config = OptimizerConfig { threads, ..OptimizerConfig::default() };
                let e = Enumerator::new(&cat, &q, config);
                let (plan, stats, trace) = e.best_plan_traced();
                outcomes.push((plan, stats, trace.render()));
            }
            let (p1, s1, t1) = &outcomes[0];
            for (p, s, t) in &outcomes[1..] {
                assert_eq!(p, p1, "plan differs across threads for {sql}");
                assert_eq!(p.cost, p1.cost, "cost differs across threads for {sql}");
                assert_eq!(
                    (
                        s.subsets_examined,
                        s.plans_considered,
                        s.plans_kept,
                        s.heuristic_skips,
                        s.solution_bytes
                    ),
                    (
                        s1.subsets_examined,
                        s1.plans_considered,
                        s1.plans_kept,
                        s1.heuristic_skips,
                        s1.solution_bytes
                    ),
                    "stats differ across threads for {sql}"
                );
                assert_eq!(t, t1, "trace differs across threads for {sql}");
            }
        }
    }

    #[test]
    fn relaxed_search_is_parallel_deterministic() {
        // The heuristic-off search (the path the relaxed fallback re-runs)
        // must also be thread-count invariant — it enumerates far more
        // items per level, so it exercises the merge harder.
        let cat = fig1_catalog();
        let Statement::Select(stmt) = parse_statement(FIG1_SQL).unwrap() else { panic!() };
        let q = bind_select(&cat, &stmt).unwrap();
        let relaxed = OptimizerConfig { defer_cartesian: false, ..OptimizerConfig::default() };
        let seq = Enumerator::new(&cat, &q, relaxed);
        let par = Enumerator::new(&cat, &q, OptimizerConfig { threads: 4, ..relaxed });
        let (p1, s1, t1) = seq.best_plan_traced();
        let (p4, s4, t4) = par.best_plan_traced();
        assert_eq!(p1, p4);
        assert_eq!(s1.plans_considered, s4.plans_considered);
        assert_eq!(t1.render(), t4.render());
    }
}
