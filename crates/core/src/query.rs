//! The bound query model: query blocks after catalog lookup and semantic
//! checking.
//!
//! "A query block is represented by a SELECT list, a FROM list, and a WHERE
//! tree" (paper §2). After binding, the WHERE tree is normalized into
//! **boolean factors** — the conjuncts of its conjunctive normal form —
//! because "every tuple returned to the user must satisfy every boolean
//! factor" (§4). Each factor carries the set of FROM-list tables it
//! references, which drives where the factor can be applied during join
//! enumeration.

use crate::bitset::TableSet;
use std::fmt;
use sysr_catalog::RelId;
use sysr_rss::{CompareOp, SegmentId, Value};
use sysr_sql::{AggFunc, ArithOp};

/// A column of one FROM-list table instance: `(table position, column
/// position)`. Two FROM entries over the same relation are distinct
/// tables here (self-joins work).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColId {
    pub table: usize,
    pub col: usize,
}

impl ColId {
    pub fn new(table: usize, col: usize) -> Self {
        ColId { table, col }
    }
}

impl fmt::Display for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.c{}", self.table, self.col)
    }
}

/// One FROM-list entry after binding.
#[derive(Debug, Clone)]
pub struct BoundTable {
    /// Position in the FROM list.
    pub table_no: usize,
    /// The catalog relation.
    pub rel: RelId,
    /// Segment holding the relation.
    pub segment: SegmentId,
    /// Binding name (alias or table name), for display.
    pub name: String,
}

/// A scalar operand as seen by scans and probes: something that resolves to
/// a [`Value`] at execution time.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A constant known at access path selection time.
    Lit(Value),
    /// A column of another table in this block — a join probe value,
    /// resolved from the composite row during execution.
    Col(ColId),
    /// A column of an enclosing query block (correlation); `level` is how
    /// many blocks up the referenced block sits (1 = immediate parent).
    Outer { level: usize, col: ColId },
    /// The (single) value of a scalar subquery of this block.
    Subquery(usize),
}

impl Operand {
    /// Whether the operand's value is known at access path selection time —
    /// the condition Table 1 puts on interpolation selectivities.
    pub fn known_at_plan_time(&self) -> Option<&Value> {
        match self {
            Operand::Lit(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Lit(v) => write!(f, "{v}"),
            Operand::Col(c) => write!(f, "{c}"),
            Operand::Outer { level, col } => write!(f, "outer^{level}:{col}"),
            Operand::Subquery(i) => write!(f, "subquery#{i}"),
        }
    }
}

/// An aggregate call in the SELECT list. `arg = None` is `COUNT(*)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<Box<SExpr>>,
}

/// Bound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SExpr {
    Col(ColId),
    Outer {
        level: usize,
        col: ColId,
    },
    Lit(Value),
    Arith {
        op: ArithOp,
        left: Box<SExpr>,
        right: Box<SExpr>,
    },
    Neg(Box<SExpr>),
    /// Scalar subquery (index into [`BoundQuery::subqueries`]).
    Subquery(usize),
    /// Aggregate — only valid in SELECT lists.
    Agg(AggCall),
}

impl SExpr {
    /// Tables of **this block** referenced by the expression.
    pub fn local_tables(&self) -> TableSet {
        let mut set = TableSet::EMPTY;
        self.visit_cols(&mut |c| set.insert(c.table));
        set
    }

    pub fn visit_cols(&self, f: &mut impl FnMut(ColId)) {
        match self {
            SExpr::Col(c) => f(*c),
            SExpr::Arith { left, right, .. } => {
                left.visit_cols(f);
                right.visit_cols(f);
            }
            SExpr::Neg(e) => e.visit_cols(f),
            SExpr::Agg(AggCall { arg, .. }) => {
                if let Some(a) = arg {
                    a.visit_cols(f);
                }
            }
            SExpr::Outer { .. } | SExpr::Lit(_) | SExpr::Subquery(_) => {}
        }
    }

    /// Whether the expression is a bare column of this block.
    pub fn as_col(&self) -> Option<ColId> {
        match self {
            SExpr::Col(c) => Some(*c),
            _ => None,
        }
    }

    /// Convert to a probe operand if it is simple enough to be evaluated
    /// without the current table's tuple: a literal, an outer reference, a
    /// scalar subquery, or a column of another table.
    pub fn as_operand_excluding(&self, table: usize) -> Option<Operand> {
        match self {
            SExpr::Lit(v) => Some(Operand::Lit(v.clone())),
            SExpr::Col(c) if c.table != table => Some(Operand::Col(*c)),
            SExpr::Outer { level, col } => Some(Operand::Outer { level: *level, col: *col }),
            SExpr::Subquery(i) => Some(Operand::Subquery(*i)),
            _ => None,
        }
    }

    pub fn contains_aggregate(&self) -> bool {
        match self {
            SExpr::Agg(_) => true,
            SExpr::Arith { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            SExpr::Neg(e) => e.contains_aggregate(),
            _ => false,
        }
    }

    /// Subquery indexes referenced by this expression.
    pub fn visit_subqueries(&self, f: &mut impl FnMut(usize)) {
        match self {
            SExpr::Subquery(i) => f(*i),
            SExpr::Arith { left, right, .. } => {
                left.visit_subqueries(f);
                right.visit_subqueries(f);
            }
            SExpr::Neg(e) => e.visit_subqueries(f),
            SExpr::Agg(AggCall { arg: Some(a), .. }) => a.visit_subqueries(f),
            _ => {}
        }
    }
}

/// Bound boolean expression — the WHERE tree.
#[derive(Debug, Clone, PartialEq)]
pub enum BExpr {
    Cmp {
        op: CompareOp,
        left: SExpr,
        right: SExpr,
    },
    Between {
        expr: SExpr,
        low: SExpr,
        high: SExpr,
        negated: bool,
    },
    InList {
        expr: SExpr,
        list: Vec<SExpr>,
        negated: bool,
    },
    /// `expr IN (subquery)`; the subquery returns a set.
    InSubquery {
        expr: SExpr,
        subquery: usize,
        negated: bool,
    },
    And(Vec<BExpr>),
    Or(Vec<BExpr>),
    Not(Box<BExpr>),
    /// Constant truth value (from degenerate rewrites).
    Const(bool),
}

impl BExpr {
    pub fn local_tables(&self) -> TableSet {
        let mut set = TableSet::EMPTY;
        self.visit_scalar(&mut |e| {
            set = set.union(e.local_tables());
        });
        set
    }

    /// Visit the scalar leaves of the boolean tree.
    pub fn visit_scalar(&self, f: &mut impl FnMut(&SExpr)) {
        match self {
            BExpr::Cmp { left, right, .. } => {
                f(left);
                f(right);
            }
            BExpr::Between { expr, low, high, .. } => {
                f(expr);
                f(low);
                f(high);
            }
            BExpr::InList { expr, list, .. } => {
                f(expr);
                for e in list {
                    f(e);
                }
            }
            BExpr::InSubquery { expr, .. } => f(expr),
            BExpr::And(children) | BExpr::Or(children) => {
                for c in children {
                    c.visit_scalar(f);
                }
            }
            BExpr::Not(inner) => inner.visit_scalar(f),
            BExpr::Const(_) => {}
        }
    }

    /// Subquery indexes referenced anywhere in this boolean expression.
    pub fn visit_subqueries(&self, f: &mut impl FnMut(usize)) {
        if let BExpr::InSubquery { subquery, .. } = self {
            f(*subquery);
        }
        match self {
            BExpr::And(children) | BExpr::Or(children) => {
                for c in children {
                    c.visit_subqueries(f);
                }
            }
            BExpr::Not(inner) => inner.visit_subqueries(f),
            _ => {}
        }
        self.visit_scalar(&mut |e| e.visit_subqueries(f));
    }
}

/// One boolean factor: a conjunct of the WHERE tree's CNF, annotated for
/// the optimizer.
#[derive(Debug, Clone)]
pub struct Factor {
    pub expr: BExpr,
    /// Tables of this block the factor references. Empty for factors over
    /// only constants / outer references / subqueries.
    pub tables: TableSet,
    /// If the factor is an equi-join predicate `T1.c1 = T2.c2`, the two
    /// columns (in either order). Used by merge-join candidates and order
    /// equivalence classes.
    pub equijoin: Option<(ColId, ColId)>,
}

/// A nested query block appearing in a predicate of the parent block.
#[derive(Debug, Clone)]
pub struct SubqueryDef {
    pub query: BoundQuery,
    /// Whether the subquery (or anything nested inside it) references
    /// columns of enclosing blocks — a *correlation subquery* (§6).
    pub correlated: bool,
    /// Whether it is used as a single value (scalar comparison) rather
    /// than a set (IN).
    pub scalar: bool,
}

/// A fully bound query block.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    pub tables: Vec<BoundTable>,
    /// Boolean factors of the WHERE tree (CNF conjuncts).
    pub factors: Vec<Factor>,
    /// Output expressions with display names.
    pub select: Vec<(String, SExpr)>,
    pub distinct: bool,
    pub group_by: Vec<ColId>,
    pub order_by: Vec<(ColId, bool)>,
    /// Nested query blocks, indexed by `Operand::Subquery` /
    /// `BExpr::InSubquery`.
    pub subqueries: Vec<SubqueryDef>,
    /// True if the SELECT list aggregates (with or without GROUP BY).
    pub aggregated: bool,
}

impl BoundQuery {
    /// Set of all tables in the block.
    pub fn all_tables(&self) -> TableSet {
        TableSet::full(self.tables.len())
    }

    /// The free outer references of this block: `(level, col)` pairs where
    /// `level` counts enclosing blocks from this one (1 = immediate
    /// parent), deduplicated. A correlated subquery's result is a function
    /// of exactly these values — the executor memoizes on them, which
    /// implements §6's "if they are the same, the previous evaluation
    /// result can be used again" without requiring sorted candidates.
    pub fn free_outer_refs(&self) -> Vec<(usize, ColId)> {
        let mut out = Vec::new();
        collect_free_refs(self, 0, &mut out);
        out.sort_unstable_by_key(|&(l, c)| (l, c.table, c.col));
        out.dedup();
        out
    }

    /// The order the *plan* must deliver rows in, if any: GROUP BY
    /// dominates (grouping is streamed over sorted rows); otherwise an
    /// all-ascending ORDER BY can be satisfied by an access path. A
    /// descending ORDER BY is handled by an explicit final sort instead
    /// (our B-tree scans are ascending-only).
    pub fn required_order(&self) -> Vec<ColId> {
        if !self.group_by.is_empty() {
            return self.group_by.clone();
        }
        if !self.order_by.is_empty() && self.order_by.iter().all(|(_, desc)| !desc) {
            return self.order_by.iter().map(|&(c, _)| c).collect();
        }
        Vec::new()
    }
}

/// Walk a block tree at `depth` below the block of interest, collecting
/// outer references that escape past that block (reported relative to it).
fn collect_free_refs(q: &BoundQuery, depth: usize, out: &mut Vec<(usize, ColId)>) {
    fn scan_sexpr(e: &SExpr, depth: usize, out: &mut Vec<(usize, ColId)>) {
        match e {
            SExpr::Outer { level, col } if *level > depth => out.push((*level - depth, *col)),
            SExpr::Arith { left, right, .. } => {
                scan_sexpr(left, depth, out);
                scan_sexpr(right, depth, out);
            }
            SExpr::Neg(inner) => scan_sexpr(inner, depth, out),
            SExpr::Agg(AggCall { arg: Some(a), .. }) => scan_sexpr(a, depth, out),
            _ => {}
        }
    }
    for f in &q.factors {
        f.expr.visit_scalar(&mut |s| scan_sexpr(s, depth, out));
    }
    for (_, e) in &q.select {
        scan_sexpr(e, depth, out);
    }
    for sub in &q.subqueries {
        collect_free_refs(&sub.query, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(t: usize, c: usize) -> SExpr {
        SExpr::Col(ColId::new(t, c))
    }

    #[test]
    fn local_tables_of_expressions() {
        let e = SExpr::Arith {
            op: ArithOp::Add,
            left: Box::new(col(0, 1)),
            right: Box::new(col(2, 0)),
        };
        assert_eq!(e.local_tables().iter().collect::<Vec<_>>(), vec![0, 2]);
        let outer = SExpr::Outer { level: 1, col: ColId::new(0, 0) };
        assert!(outer.local_tables().is_empty());
    }

    #[test]
    fn operand_conversion() {
        assert_eq!(col(1, 2).as_operand_excluding(0), Some(Operand::Col(ColId::new(1, 2))));
        assert_eq!(col(0, 2).as_operand_excluding(0), None);
        assert_eq!(
            SExpr::Lit(Value::Int(5)).as_operand_excluding(0),
            Some(Operand::Lit(Value::Int(5)))
        );
    }

    #[test]
    fn bexpr_tables_union() {
        let e = BExpr::And(vec![
            BExpr::Cmp { op: CompareOp::Eq, left: col(0, 0), right: SExpr::Lit(Value::Int(1)) },
            BExpr::Cmp { op: CompareOp::Eq, left: col(1, 0), right: col(2, 0) },
        ]);
        assert_eq!(e.local_tables().iter().collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn required_order_rules() {
        let mut q = BoundQuery {
            tables: vec![],
            factors: vec![],
            select: vec![],
            distinct: false,
            group_by: vec![],
            order_by: vec![(ColId::new(0, 1), false)],
            subqueries: vec![],
            aggregated: false,
        };
        assert_eq!(q.required_order(), vec![ColId::new(0, 1)]);
        q.order_by[0].1 = true; // DESC → final sort, no plan order
        assert!(q.required_order().is_empty());
        q.group_by = vec![ColId::new(0, 0)];
        assert_eq!(q.required_order(), vec![ColId::new(0, 0)]);
    }
}
