//! Binder: catalog lookup, semantic checking, and normalization into
//! boolean factors.
//!
//! This is the front half of the paper's OPTIMIZER component (§2): names
//! are resolved against the catalogs, expressions are type-checked, and the
//! WHERE tree is put into conjunctive normal form, each conjunct becoming a
//! boolean factor. Subqueries are bound recursively with a scope stack so
//! a nested block can reference "a value obtained from a candidate tuple of
//! a higher level query block" (§6) — a correlation subquery.

use crate::query::{AggCall, BExpr, BoundQuery, BoundTable, ColId, Factor, SExpr, SubqueryDef};
use std::fmt;
use sysr_catalog::{Catalog, RelationMeta};
use sysr_rss::{ColType, CompareOp, Value};
use sysr_sql::{ColumnRef, Expr, SelectList, SelectStmt};

/// Semantic errors detected during binding.
#[derive(Debug, Clone, PartialEq)]
pub enum BindError {
    UnknownTable(String),
    DuplicateBinding(String),
    UnknownColumn(String),
    AmbiguousColumn(String),
    TypeMismatch(String),
    AggregateMisuse(String),
    SubqueryShape(String),
    Unsupported(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnknownTable(t) => write!(f, "unknown table {t}"),
            BindError::DuplicateBinding(t) => write!(f, "duplicate table binding {t}"),
            BindError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            BindError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            BindError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            BindError::AggregateMisuse(m) => write!(f, "aggregate misuse: {m}"),
            BindError::SubqueryShape(m) => write!(f, "bad subquery: {m}"),
            BindError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for BindError {}

/// Bind a SELECT statement against the catalog, producing a normalized
/// query block tree.
pub fn bind_select(catalog: &Catalog, stmt: &SelectStmt) -> Result<BoundQuery, BindError> {
    let mut scopes = Vec::new();
    bind_block(catalog, stmt, &mut scopes)
}

/// One lexical scope: the FROM-list tables of one enclosing block.
struct Scope<'a> {
    tables: Vec<(String, &'a RelationMeta)>,
}

fn bind_block<'a>(
    catalog: &'a Catalog,
    stmt: &SelectStmt,
    scopes: &mut Vec<Scope<'a>>,
) -> Result<BoundQuery, BindError> {
    // ---- FROM list --------------------------------------------------------
    let mut scope = Scope { tables: Vec::new() };
    let mut tables = Vec::new();
    for (table_no, tref) in stmt.from.iter().enumerate() {
        let rel = catalog
            .relation_by_name(&tref.table)
            .map_err(|_| BindError::UnknownTable(tref.table.to_ascii_uppercase()))?;
        let binding = tref.binding_name().to_ascii_uppercase();
        if scope.tables.iter().any(|(n, _)| *n == binding) {
            return Err(BindError::DuplicateBinding(binding));
        }
        tables.push(BoundTable {
            table_no,
            rel: rel.id,
            segment: rel.segment,
            name: binding.clone(),
        });
        scope.tables.push((binding, rel));
    }
    scopes.push(scope);
    let result = bind_block_inner(catalog, stmt, scopes, tables);
    scopes.pop();
    result
}

fn bind_block_inner<'a>(
    catalog: &'a Catalog,
    stmt: &SelectStmt,
    scopes: &mut Vec<Scope<'a>>,
    tables: Vec<BoundTable>,
) -> Result<BoundQuery, BindError> {
    let mut ctx = BlockCtx { catalog, scopes, subqueries: Vec::new() };

    // ---- WHERE tree → boolean factors -------------------------------------
    let mut factors = Vec::new();
    if let Some(where_expr) = &stmt.where_clause {
        let bound = ctx.bind_bool(where_expr)?;
        let nnf = push_not_down(bound, false);
        collect_conjuncts(nnf, &mut factors);
    }
    let factors: Vec<Factor> = factors
        .into_iter()
        .map(|expr| {
            let mut tables = expr.local_tables();
            // A factor that references a correlated subquery implicitly
            // depends on the tables of *this* block the subquery reaches
            // back to — it can only be evaluated once those tables'
            // candidate tuples are present.
            expr.visit_subqueries(&mut |i| {
                let Some(sub) = ctx.subqueries.get(i) else { return };
                for t in tables_referenced_at_level(&sub.query, 1) {
                    tables.insert(t);
                }
            });
            let equijoin = detect_equijoin(&expr);
            Factor { expr, tables, equijoin }
        })
        .collect();

    // ---- SELECT list -------------------------------------------------------
    let mut select = Vec::new();
    match &stmt.select {
        SelectList::Star => {
            for (tno, t) in ctx.current_tables()?.iter().enumerate() {
                for (cno, col) in t.1.columns.iter().enumerate() {
                    select.push((col.name.clone(), SExpr::Col(ColId::new(tno, cno))));
                }
            }
        }
        SelectList::Items(items) => {
            for (i, item) in items.iter().enumerate() {
                let bound = ctx.bind_scalar(&item.expr, true)?;
                let name = item
                    .alias
                    .clone()
                    .map(|a| a.to_ascii_uppercase())
                    .unwrap_or_else(|| default_name(&item.expr, i));
                select.push((name, bound));
            }
        }
    }

    // ---- GROUP BY / ORDER BY ----------------------------------------------
    let group_by: Vec<ColId> =
        stmt.group_by.iter().map(|c| ctx.resolve_col_current(c)).collect::<Result<_, _>>()?;
    let order_by: Vec<(ColId, bool)> = stmt
        .order_by
        .iter()
        .map(|o| ctx.resolve_col_current(&o.col).map(|c| (c, o.desc)))
        .collect::<Result<_, _>>()?;

    // ---- aggregate validation ----------------------------------------------
    let has_agg = select.iter().any(|(_, e)| e.contains_aggregate());
    let aggregated = has_agg || !group_by.is_empty();
    if aggregated {
        for (name, e) in &select {
            validate_agg_item(e, &group_by, name)?;
        }
    }
    for f in &factors {
        let mut bad = false;
        f.expr.visit_scalar(&mut |e| bad |= e.contains_aggregate());
        if bad {
            return Err(BindError::AggregateMisuse("aggregates are not allowed in WHERE".into()));
        }
    }

    let subqueries = ctx.subqueries;
    Ok(BoundQuery {
        tables,
        factors,
        select,
        distinct: stmt.distinct,
        group_by,
        order_by,
        subqueries,
        aggregated,
    })
}

/// Top-level output name for an unaliased select item.
fn default_name(expr: &Expr, position: usize) -> String {
    match expr {
        Expr::Column(c) => c.column.clone(),
        Expr::Agg { func, .. } => format!("{func}"),
        _ => format!("COL{}", position + 1),
    }
}

/// Verify a select item of an aggregated block: either a pure aggregate
/// expression, or an expression over GROUP BY columns only.
fn validate_agg_item(e: &SExpr, group_by: &[ColId], name: &str) -> Result<(), BindError> {
    if expr_is_aggregate_only(e) {
        // Aggregates may not nest.
        return Ok(());
    }
    let mut ok = true;
    e.visit_cols(&mut |c| {
        if !group_by.contains(&c) {
            ok = false;
        }
    });
    if ok && !e.contains_aggregate() {
        Ok(())
    } else {
        Err(BindError::AggregateMisuse(format!(
            "select item {name} must be an aggregate or reference only GROUP BY columns"
        )))
    }
}

/// True if every column reference in the expression sits under an
/// aggregate.
fn expr_is_aggregate_only(e: &SExpr) -> bool {
    match e {
        SExpr::Agg(_) => true,
        SExpr::Lit(_) | SExpr::Subquery(_) | SExpr::Outer { .. } => true,
        SExpr::Col(_) => false,
        SExpr::Arith { left, right, .. } => {
            expr_is_aggregate_only(left) && expr_is_aggregate_only(right)
        }
        SExpr::Neg(inner) => expr_is_aggregate_only(inner),
    }
}

struct BlockCtx<'a, 'b> {
    catalog: &'a Catalog,
    scopes: &'b mut Vec<Scope<'a>>,
    subqueries: Vec<SubqueryDef>,
}

impl<'a, 'b> BlockCtx<'a, 'b> {
    /// Tables of the innermost open block. A scope is pushed before any
    /// lookup and popped after, so an empty stack is a binder bug —
    /// reported as a `BindError` rather than a panic so a malformed
    /// traversal degrades to a failed statement, not a downed session.
    fn current_tables(&self) -> Result<&[(String, &'a RelationMeta)], BindError> {
        match self.scopes.last() {
            Some(scope) => Ok(&scope.tables),
            None => Err(BindError::Unsupported(
                "binder scope stack is empty mid-block (binder bug)".into(),
            )),
        }
    }

    /// Resolve a column reference. Searches the current block first, then
    /// enclosing blocks (producing `Outer` references — correlation).
    fn resolve(&self, cref: &ColumnRef) -> Result<(usize, ColId, ColType), BindError> {
        let column = cref.column.to_ascii_uppercase();
        let qualifier = cref.table.as_ref().map(|t| t.to_ascii_uppercase());
        for (level, scope) in self.scopes.iter().rev().enumerate() {
            let mut found: Option<(ColId, ColType)> = None;
            for (tno, (binding, rel)) in scope.tables.iter().enumerate() {
                if let Some(q) = &qualifier {
                    if q != binding {
                        continue;
                    }
                }
                let at = rel.column_position(&column);
                if let Some((cno, meta)) = at.and_then(|c| Some((c, rel.columns.get(c)?))) {
                    if found.is_some() {
                        return Err(BindError::AmbiguousColumn(format!("{cref}")));
                    }
                    found = Some((ColId::new(tno, cno), meta.ty));
                }
            }
            if let Some((col, ty)) = found {
                return Ok((level, col, ty));
            }
            // A qualifier that names a table of this scope but a missing
            // column should not silently fall through to outer scopes.
            if let Some(q) = &qualifier {
                if scope.tables.iter().any(|(b, _)| b == q) {
                    return Err(BindError::UnknownColumn(format!("{cref}")));
                }
            }
        }
        Err(BindError::UnknownColumn(format!("{cref}")))
    }

    /// Resolve a column that must belong to the current block (GROUP BY /
    /// ORDER BY).
    fn resolve_col_current(&self, cref: &ColumnRef) -> Result<ColId, BindError> {
        let (level, col, _) = self.resolve(cref)?;
        if level != 0 {
            return Err(BindError::UnknownColumn(format!(
                "{cref} (resolves to an enclosing block)"
            )));
        }
        Ok(col)
    }

    fn bind_scalar(&mut self, expr: &Expr, allow_agg: bool) -> Result<SExpr, BindError> {
        Ok(match expr {
            Expr::Column(cref) => {
                let (level, col, _) = self.resolve(cref)?;
                if level == 0 {
                    SExpr::Col(col)
                } else {
                    SExpr::Outer { level, col }
                }
            }
            Expr::Literal(v) => SExpr::Lit(v.clone()),
            Expr::Arith { op, left, right } => {
                let l = self.bind_scalar(left, allow_agg)?;
                let r = self.bind_scalar(right, allow_agg)?;
                self.require_numeric(&l, "arithmetic")?;
                self.require_numeric(&r, "arithmetic")?;
                SExpr::Arith { op: *op, left: Box::new(l), right: Box::new(r) }
            }
            Expr::Neg(inner) => {
                let e = self.bind_scalar(inner, allow_agg)?;
                self.require_numeric(&e, "negation")?;
                SExpr::Neg(Box::new(e))
            }
            Expr::Agg { func, arg } => {
                if !allow_agg {
                    return Err(BindError::AggregateMisuse(
                        "aggregate not allowed in this context".into(),
                    ));
                }
                let bound_arg = match arg {
                    Some(a) => {
                        let inner = self.bind_scalar(a, false)?;
                        if inner.contains_aggregate() {
                            return Err(BindError::AggregateMisuse(
                                "aggregates may not nest".into(),
                            ));
                        }
                        Some(Box::new(inner))
                    }
                    None => None,
                };
                SExpr::Agg(AggCall { func: *func, arg: bound_arg })
            }
            Expr::Compare { .. }
            | Expr::Between { .. }
            | Expr::InList { .. }
            | Expr::InSubquery { .. }
            | Expr::CompareSubquery { .. }
            | Expr::And(..)
            | Expr::Or(..)
            | Expr::Not(..) => {
                return Err(BindError::Unsupported(
                    "boolean expression used as a scalar value".into(),
                ))
            }
        })
    }

    fn bind_bool(&mut self, expr: &Expr) -> Result<BExpr, BindError> {
        Ok(match expr {
            Expr::Compare { op, left, right } => BExpr::Cmp {
                op: *op,
                left: self.bind_scalar(left, false)?,
                right: self.bind_scalar(right, false)?,
            },
            Expr::Between { expr, low, high, negated } => BExpr::Between {
                expr: self.bind_scalar(expr, false)?,
                low: self.bind_scalar(low, false)?,
                high: self.bind_scalar(high, false)?,
                negated: *negated,
            },
            Expr::InList { expr, list, negated } => BExpr::InList {
                expr: self.bind_scalar(expr, false)?,
                list: list.iter().map(|e| self.bind_scalar(e, false)).collect::<Result<_, _>>()?,
                negated: *negated,
            },
            Expr::InSubquery { expr, query, negated } => {
                let e = self.bind_scalar(expr, false)?;
                let sub = self.bind_subquery(query, false)?;
                BExpr::InSubquery { expr: e, subquery: sub, negated: *negated }
            }
            Expr::CompareSubquery { op, left, query } => {
                let l = self.bind_scalar(left, false)?;
                let sub = self.bind_subquery(query, true)?;
                // A scalar comparison against a subquery: modeled as a
                // comparison with the subquery's single value.
                BExpr::Cmp { op: *op, left: l, right: SExpr::Subquery(sub) }
            }
            Expr::And(a, b) => BExpr::And(vec![self.bind_bool(a)?, self.bind_bool(b)?]),
            Expr::Or(a, b) => BExpr::Or(vec![self.bind_bool(a)?, self.bind_bool(b)?]),
            Expr::Not(inner) => BExpr::Not(Box::new(self.bind_bool(inner)?)),
            other => {
                // A bare scalar in boolean position is not in the dialect.
                return Err(BindError::Unsupported(format!(
                    "expression {other:?} is not a predicate"
                )));
            }
        })
    }

    fn bind_subquery(&mut self, query: &SelectStmt, scalar: bool) -> Result<usize, BindError> {
        let bound = bind_block(self.catalog, query, self.scopes)?;
        if bound.select.len() != 1 {
            return Err(BindError::SubqueryShape(format!(
                "subquery must return exactly one column, has {}",
                bound.select.len()
            )));
        }
        let correlated = query_escapes(&bound, 0);
        let idx = self.subqueries.len();
        self.subqueries.push(SubqueryDef { query: bound, correlated, scalar });
        Ok(idx)
    }

    /// Numeric check for arithmetic. Columns carry exact types; anything
    /// else (outer refs, subqueries) is checked at execution.
    fn require_numeric(&self, e: &SExpr, what: &str) -> Result<(), BindError> {
        let bad = match e {
            SExpr::Lit(Value::Str(_)) => true,
            SExpr::Col(c) => {
                let ty = self.column_type(*c);
                ty == Some(ColType::Str)
            }
            _ => false,
        };
        if bad {
            Err(BindError::TypeMismatch(format!("{what} requires a numeric operand")))
        } else {
            Ok(())
        }
    }

    fn column_type(&self, col: ColId) -> Option<ColType> {
        let (_, rel) = self.current_tables().ok()?.get(col.table)?;
        Some(rel.columns.get(col.col)?.ty)
    }
}

/// Tables of the block `levels_up` blocks above `q` that `q` (or its
/// nested subqueries) references. Used to tie a correlated subquery's
/// factor to the outer tables it probes.
fn tables_referenced_at_level(q: &BoundQuery, levels_up: usize) -> Vec<usize> {
    let mut out = Vec::new();
    fn scan_sexpr(e: &SExpr, want: usize, out: &mut Vec<usize>) {
        match e {
            SExpr::Outer { level, col } if *level == want => out.push(col.table),
            SExpr::Arith { left, right, .. } => {
                scan_sexpr(left, want, out);
                scan_sexpr(right, want, out);
            }
            SExpr::Neg(inner) => scan_sexpr(inner, want, out),
            SExpr::Agg(AggCall { arg: Some(a), .. }) => scan_sexpr(a, want, out),
            _ => {}
        }
    }
    for f in &q.factors {
        f.expr.visit_scalar(&mut |s| scan_sexpr(s, levels_up, &mut out));
    }
    for (_, e) in &q.select {
        scan_sexpr(e, levels_up, &mut out);
    }
    for sub in &q.subqueries {
        out.extend(tables_referenced_at_level(&sub.query, levels_up + 1));
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Does any expression in `q` (or its nested subqueries) reference a block
/// *above* `q` itself? `depth` is how many blocks down from the block of
/// interest we currently are.
fn query_escapes(q: &BoundQuery, depth: usize) -> bool {
    fn sexpr_escapes(e: &SExpr, depth: usize) -> bool {
        match e {
            SExpr::Outer { level, .. } => *level > depth,
            SExpr::Arith { left, right, .. } => {
                sexpr_escapes(left, depth) || sexpr_escapes(right, depth)
            }
            SExpr::Neg(inner) => sexpr_escapes(inner, depth),
            SExpr::Agg(AggCall { arg: Some(a), .. }) => sexpr_escapes(a, depth),
            _ => false,
        }
    }
    fn bexpr_escapes(e: &BExpr, depth: usize) -> bool {
        let mut esc = false;
        e.visit_scalar(&mut |s| esc |= sexpr_escapes(s, depth));
        esc
    }
    q.factors.iter().any(|f| bexpr_escapes(&f.expr, depth))
        || q.select.iter().any(|(_, e)| sexpr_escapes(e, depth))
        || q.subqueries.iter().any(|s| query_escapes(&s.query, depth + 1))
}

/// Push NOT down to the leaves (negation normal form). `negate` is the
/// parity of NOTs seen above.
fn push_not_down(e: BExpr, negate: bool) -> BExpr {
    match e {
        BExpr::Not(inner) => push_not_down(*inner, !negate),
        BExpr::And(children) => {
            let mapped = children.into_iter().map(|c| push_not_down(c, negate)).collect();
            if negate {
                BExpr::Or(mapped)
            } else {
                BExpr::And(mapped)
            }
        }
        BExpr::Or(children) => {
            let mapped = children.into_iter().map(|c| push_not_down(c, negate)).collect();
            if negate {
                BExpr::And(mapped)
            } else {
                BExpr::Or(mapped)
            }
        }
        BExpr::Cmp { op, left, right } => {
            let op = if negate { negate_op(op) } else { op };
            BExpr::Cmp { op, left, right }
        }
        BExpr::Between { expr, low, high, negated } => {
            BExpr::Between { expr, low, high, negated: negated ^ negate }
        }
        BExpr::InList { expr, list, negated } => {
            BExpr::InList { expr, list, negated: negated ^ negate }
        }
        BExpr::InSubquery { expr, subquery, negated } => {
            BExpr::InSubquery { expr, subquery, negated: negated ^ negate }
        }
        BExpr::Const(b) => BExpr::Const(b ^ negate),
    }
}

fn negate_op(op: CompareOp) -> CompareOp {
    op.negated()
}

/// Flatten top-level ANDs: the conjuncts are the boolean factors. "The
/// WHERE tree is considered to be in conjunctive normal form, and every
/// conjunct is called a boolean factor" (§4). OR trees remain single
/// factors — "a boolean factor may be an entire tree of predicates headed
/// by an OR".
fn collect_conjuncts(e: BExpr, out: &mut Vec<BExpr>) {
    match e {
        BExpr::And(children) => {
            for c in children {
                collect_conjuncts(c, out);
            }
        }
        BExpr::Const(true) => {}
        other => out.push(other),
    }
}

/// Recognize `T1.c1 = T2.c2` equi-join factors.
fn detect_equijoin(e: &BExpr) -> Option<(ColId, ColId)> {
    if let BExpr::Cmp { op: CompareOp::Eq, left: SExpr::Col(a), right: SExpr::Col(b) } = e {
        if a.table != b.table {
            return Some((*a, *b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysr_catalog::ColumnMeta;
    use sysr_sql::parse_statement;
    use sysr_sql::Statement;

    fn demo_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.create_relation(
            "EMP",
            0,
            vec![
                ColumnMeta::new("NAME", ColType::Str),
                ColumnMeta::new("DNO", ColType::Int),
                ColumnMeta::new("JOB", ColType::Int),
                ColumnMeta::new("SAL", ColType::Float),
            ],
        )
        .unwrap();
        cat.create_relation(
            "DEPT",
            1,
            vec![
                ColumnMeta::new("DNO", ColType::Int),
                ColumnMeta::new("DNAME", ColType::Str),
                ColumnMeta::new("LOC", ColType::Str),
            ],
        )
        .unwrap();
        cat.create_relation(
            "JOB",
            2,
            vec![ColumnMeta::new("JOB", ColType::Int), ColumnMeta::new("TITLE", ColType::Str)],
        )
        .unwrap();
        cat.create_relation(
            "EMPLOYEE",
            3,
            vec![
                ColumnMeta::new("NAME", ColType::Str),
                ColumnMeta::new("SALARY", ColType::Float),
                ColumnMeta::new("EMPLOYEE_NUMBER", ColType::Int),
                ColumnMeta::new("MANAGER", ColType::Int),
            ],
        )
        .unwrap();
        cat
    }

    fn bind(src: &str) -> Result<BoundQuery, BindError> {
        let Statement::Select(stmt) = parse_statement(src).unwrap() else { panic!() };
        bind_select(&demo_catalog(), &stmt)
    }

    #[test]
    fn fig1_binds_with_four_factors() {
        let q = bind(
            "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
             WHERE TITLE='CLERK' AND LOC='DENVER'
               AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.factors.len(), 4);
        let joins: Vec<_> = q.factors.iter().filter_map(|f| f.equijoin).collect();
        assert_eq!(joins.len(), 2);
        // EMP.DNO = DEPT.DNO: EMP is table 0 col 1, DEPT table 1 col 0.
        assert!(joins.contains(&(ColId::new(0, 1), ColId::new(1, 0))));
        assert!(joins.contains(&(ColId::new(0, 2), ColId::new(2, 0))));
        // TITLE resolves to JOB (table 2), LOC to DEPT (table 1).
        assert_eq!(q.factors[0].tables.iter().collect::<Vec<_>>(), vec![2]);
        assert_eq!(q.factors[1].tables.iter().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn star_expands_all_columns() {
        let q = bind("SELECT * FROM EMP, JOB").unwrap();
        assert_eq!(q.select.len(), 6);
        assert_eq!(q.select[0].0, "NAME");
        assert_eq!(q.select[4].1, SExpr::Col(ColId::new(1, 0)));
    }

    #[test]
    fn ambiguous_and_unknown_columns() {
        assert!(matches!(bind("SELECT DNO FROM EMP, DEPT"), Err(BindError::AmbiguousColumn(_))));
        assert!(matches!(bind("SELECT BOGUS FROM EMP"), Err(BindError::UnknownColumn(_))));
        assert!(matches!(bind("SELECT X FROM NOPE"), Err(BindError::UnknownTable(_))));
        assert!(matches!(
            bind("SELECT EMP.BOGUS FROM EMP, DEPT"),
            Err(BindError::UnknownColumn(_))
        ));
    }

    #[test]
    fn self_join_with_aliases() {
        let q = bind("SELECT A.NAME FROM EMP A, EMP B WHERE A.DNO = B.DNO").unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.factors[0].equijoin, Some((ColId::new(0, 1), ColId::new(1, 1))));
        assert!(matches!(bind("SELECT NAME FROM EMP, EMP"), Err(BindError::DuplicateBinding(_))));
    }

    #[test]
    fn not_pushdown_flips_operators() {
        let q = bind("SELECT NAME FROM EMP WHERE NOT (SAL > 10 AND DNO = 1)").unwrap();
        // NOT(AND) → OR(neg, neg): a single boolean factor headed by OR.
        assert_eq!(q.factors.len(), 1);
        let BExpr::Or(children) = &q.factors[0].expr else { panic!("{:?}", q.factors) };
        assert!(matches!(children[0], BExpr::Cmp { op: CompareOp::Le, .. }));
        assert!(matches!(children[1], BExpr::Cmp { op: CompareOp::Ne, .. }));
    }

    #[test]
    fn double_negation_cancels() {
        let q = bind("SELECT NAME FROM EMP WHERE NOT (NOT (SAL > 10))").unwrap();
        assert!(matches!(q.factors[0].expr, BExpr::Cmp { op: CompareOp::Gt, .. }));
    }

    #[test]
    fn not_between_and_not_in_normalize() {
        let q = bind("SELECT NAME FROM EMP WHERE NOT (SAL BETWEEN 1 AND 2)").unwrap();
        assert!(matches!(q.factors[0].expr, BExpr::Between { negated: true, .. }));
        let q = bind("SELECT NAME FROM EMP WHERE NOT (DNO NOT IN (1,2))").unwrap();
        assert!(matches!(q.factors[0].expr, BExpr::InList { negated: false, .. }));
    }

    #[test]
    fn uncorrelated_subquery() {
        let q = bind("SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)")
            .unwrap();
        assert_eq!(q.subqueries.len(), 1);
        assert!(!q.subqueries[0].correlated);
        assert!(q.subqueries[0].scalar);
        assert!(q.subqueries[0].query.aggregated);
        assert!(matches!(q.factors[0].expr, BExpr::Cmp { right: SExpr::Subquery(0), .. }));
    }

    #[test]
    fn correlated_subquery_from_paper() {
        let q = bind(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
        )
        .unwrap();
        assert_eq!(q.subqueries.len(), 1);
        assert!(q.subqueries[0].correlated);
        let sub = &q.subqueries[0].query;
        // Inside the subquery, X.MANAGER is an outer reference one level up.
        let BExpr::Cmp { right, .. } = &sub.factors[0].expr else { panic!() };
        assert_eq!(*right, SExpr::Outer { level: 1, col: ColId::new(0, 3) });
    }

    #[test]
    fn three_level_correlation_detected_transitively() {
        let q = bind(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
                 (SELECT MANAGER FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER))",
        )
        .unwrap();
        // Level-2 subquery is itself correlated because its nested level-3
        // block reaches past it to X.
        assert!(q.subqueries[0].correlated);
        let level2 = &q.subqueries[0].query;
        assert_eq!(level2.subqueries.len(), 1);
        assert!(level2.subqueries[0].correlated);
        let level3 = &level2.subqueries[0].query;
        let BExpr::Cmp { right, .. } = &level3.factors[0].expr else { panic!() };
        assert_eq!(*right, SExpr::Outer { level: 2, col: ColId::new(0, 3) });
    }

    #[test]
    fn in_subquery_binds_as_set() {
        let q = bind("SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC='DENVER')")
            .unwrap();
        assert!(!q.subqueries[0].scalar);
        assert!(!q.subqueries[0].correlated);
    }

    #[test]
    fn subquery_must_have_one_column() {
        assert!(matches!(
            bind("SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO, DNAME FROM DEPT)"),
            Err(BindError::SubqueryShape(_))
        ));
    }

    #[test]
    fn aggregate_validation() {
        assert!(bind("SELECT DNO, AVG(SAL) FROM EMP GROUP BY DNO").is_ok());
        assert!(matches!(
            bind("SELECT NAME, AVG(SAL) FROM EMP GROUP BY DNO"),
            Err(BindError::AggregateMisuse(_))
        ));
        assert!(matches!(
            bind("SELECT NAME FROM EMP WHERE AVG(SAL) > 10"),
            Err(BindError::AggregateMisuse(_))
        ));
        assert!(bind("SELECT COUNT(*) FROM EMP").is_ok());
    }

    #[test]
    fn arithmetic_type_checks() {
        assert!(matches!(bind("SELECT SAL + NAME FROM EMP"), Err(BindError::TypeMismatch(_))));
        assert!(bind("SELECT SAL * 2 + DNO FROM EMP").is_ok());
    }

    #[test]
    fn group_order_resolve_in_current_block_only() {
        let q = bind("SELECT DNO FROM EMP ORDER BY DNO").unwrap();
        assert_eq!(q.order_by, vec![(ColId::new(0, 1), false)]);
        let q = bind("SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO").unwrap();
        assert_eq!(q.group_by, vec![ColId::new(0, 1)]);
    }
}
