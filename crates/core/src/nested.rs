//! Nested-query planning (§6) and final plan assembly.
//!
//! Subquery blocks are planned bottom-up, each with the same access path
//! selection as the top block. At execution time:
//!
//! * a subquery that references no higher-level values is evaluated
//!   **once** before its parent predicate is first tested ("the OPTIMIZER
//!   will arrange for the subquery to be evaluated before the top level
//!   query is evaluated");
//! * a *correlation subquery* "must in principle be re-evaluated for each
//!   candidate tuple from the referenced query block" — the executor
//!   memoizes results per referenced-value combination, which implements
//!   the paper's optimization of skipping re-evaluation "if the current
//!   referenced value is the same as the one in the previous candidate
//!   tuple", generalized to a cache (the paper's NCARD > ICARD clue tells
//!   when this pays off; caching is strictly better than the sequential
//!   test and needs no ordering assumption).

use crate::enumerate::{Enumerator, SearchTrace};
use crate::num::card_f64;
use crate::plan::QueryPlan;
use crate::query::BoundQuery;
use crate::selectivity::estimate_qcard;
use crate::OptimizerConfig;
use sysr_catalog::Catalog;

/// Plan a bound query block and, recursively, all of its subquery blocks.
pub fn plan_query(catalog: &Catalog, config: &OptimizerConfig, bound: &BoundQuery) -> QueryPlan {
    plan_block(catalog, config, bound, "root", &mut None)
}

/// Like [`plan_query`], additionally collecting each block's
/// [`SearchTrace`], labeled by position (`root`, `subquery #0`,
/// `subquery #0.1` for nesting), root block first.
pub fn plan_query_traced(
    catalog: &Catalog,
    config: &OptimizerConfig,
    bound: &BoundQuery,
) -> (QueryPlan, Vec<(String, SearchTrace)>) {
    let mut traces: Vec<(String, SearchTrace)> = Vec::new();
    let plan = plan_block(catalog, config, bound, "root", &mut Some(&mut traces));
    (plan, traces)
}

fn plan_block(
    catalog: &Catalog,
    config: &OptimizerConfig,
    bound: &BoundQuery,
    label: &str,
    traces: &mut Option<&mut Vec<(String, SearchTrace)>>,
) -> QueryPlan {
    let enumerator = Enumerator::new(catalog, bound, *config);
    let (root, stats) = match traces {
        Some(out) => {
            let (root, stats, trace) = enumerator.best_plan_traced();
            out.push((label.to_string(), trace));
            (root, stats)
        }
        None => enumerator.best_plan(),
    };

    let subplans: Vec<QueryPlan> = bound
        .subqueries
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let sub_label =
                if label == "root" { format!("subquery #{i}") } else { format!("{label}.{i}") };
            plan_block(catalog, config, &s.query, &sub_label, traces)
        })
        .collect();

    // Factors with no local table (pure outer references / constants /
    // subquery-only comparisons) are evaluated once per correlation
    // binding, before the block's scans run.
    let block_filters: Vec<usize> = bound
        .factors
        .iter()
        .enumerate()
        .filter(|(_, f)| f.tables.is_empty())
        .map(|(i, _)| i)
        .collect();

    let qcard = estimate_qcard(catalog, bound);

    // Predicted total: this block plus its subqueries. An uncorrelated
    // subquery runs once; a correlated one is re-evaluated per candidate
    // tuple of the referencing block — bounded above by the block's input
    // cardinality and below by one evaluation. We charge the geometric
    // mean of those bounds as a point estimate and note that the §7
    // experiments compare *measured* costs, not this roll-up.
    let mut predicted = root.cost;
    for (def, sub) in bound.subqueries.iter().zip(&subplans) {
        let evals = if def.correlated {
            let candidates: f64 = bound
                .tables
                .iter()
                .map(|t| catalog.relation(t.rel).map(|r| card_f64(r.stats.ncard)).unwrap_or(1.0))
                .product::<f64>()
                .max(1.0);
            candidates.sqrt().max(1.0)
        } else {
            1.0
        };
        predicted += sub.predicted.times(evals);
    }

    QueryPlan { query: bound.clone(), root, subplans, block_filters, predicted, qcard, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use sysr_catalog::{Catalog, ColumnMeta, RelStats};
    use sysr_rss::ColType;
    use sysr_sql::{parse_statement, Statement};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        let employee = cat
            .create_relation(
                "EMPLOYEE",
                0,
                vec![
                    ColumnMeta::new("NAME", ColType::Str),
                    ColumnMeta::new("SALARY", ColType::Float),
                    ColumnMeta::new("EMPLOYEE_NUMBER", ColType::Int),
                    ColumnMeta::new("MANAGER", ColType::Int),
                    ColumnMeta::new("DEPARTMENT_NUMBER", ColType::Int),
                ],
            )
            .unwrap();
        let department = cat
            .create_relation(
                "DEPARTMENT",
                1,
                vec![
                    ColumnMeta::new("DEPARTMENT_NUMBER", ColType::Int),
                    ColumnMeta::new("LOCATION", ColType::Str),
                ],
            )
            .unwrap();
        cat.set_relation_stats(
            employee,
            RelStats { ncard: 1000, tcard: 50, pfrac: 1.0, avg_width: 48.0, valid: true },
        );
        cat.set_relation_stats(
            department,
            RelStats { ncard: 20, tcard: 1, pfrac: 1.0, avg_width: 24.0, valid: true },
        );
        cat
    }

    fn plan(sql: &str) -> QueryPlan {
        let cat = catalog();
        let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
        let bound = bind_select(&cat, &stmt).unwrap();
        plan_query(&cat, &OptimizerConfig::default(), &bound)
    }

    #[test]
    fn uncorrelated_scalar_subquery_planned_once() {
        let p = plan("SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)");
        assert_eq!(p.subplans.len(), 1);
        assert!(!p.query.subqueries[0].correlated);
        // Predicted includes exactly one evaluation of the subquery.
        let expected = p.root.cost + p.subplans[0].predicted;
        assert!((p.predicted.pages - expected.pages).abs() < 1e-9);
    }

    #[test]
    fn correlated_subquery_charged_for_reevaluation() {
        let p = plan(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
        );
        assert!(p.query.subqueries[0].correlated);
        assert!(
            p.predicted.pages > p.root.cost.pages + p.subplans[0].predicted.pages,
            "correlated subquery must be charged more than one evaluation"
        );
    }

    #[test]
    fn nested_subqueries_planned_recursively() {
        let p = plan(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
                 (SELECT MANAGER FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER))",
        );
        assert_eq!(p.subplans.len(), 1);
        assert_eq!(p.subplans[0].subplans.len(), 1);
    }

    #[test]
    fn in_subquery_plans_set_block() {
        let p = plan(
            "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER IN
               (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
        );
        assert_eq!(p.subplans.len(), 1);
        assert!(!p.query.subqueries[0].scalar);
        // The IN predicate has no sargable form: it is residual on the scan.
        assert!(p.qcard > 0.0);
    }

    #[test]
    fn explain_renders_subqueries() {
        let cat = catalog();
        let Statement::Select(stmt) = parse_statement(
            "SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
        )
        .unwrap() else {
            panic!()
        };
        let bound = bind_select(&cat, &stmt).unwrap();
        let p = plan_query(&cat, &OptimizerConfig::default(), &bound);
        let text = p.explain(&cat);
        assert!(text.contains("subquery #0"), "{text}");
        assert!(text.contains("SEGMENT SCAN"), "{text}");
    }
}
