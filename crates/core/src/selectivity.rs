//! Selectivity factors — the paper's **Table 1**.
//!
//! "Using these statistics, the OPTIMIZER assigns a selectivity factor F
//! for each boolean factor in the predicate list. This selectivity factor
//! very roughly corresponds to the expected fraction of tuples which will
//! satisfy the predicate." (§4)
//!
//! Every rule below is a line of Table 1; the defaults (1/10, 1/3, 1/4,
//! 1/2) are the paper's own, chosen so that equal predicates are guessed
//! more selective than ranges, and ranges more selective than half the
//! relation. `column <> value` is not in Table 1; we use `1 − F(=)`, the
//! complement of the equal rule, and document the extrapolation.

use crate::num::{card_f64, len_f64};
use crate::query::{BExpr, BoundQuery, BoundTable, ColId, Factor, SExpr};
use sysr_catalog::Catalog;
use sysr_rss::{CompareOp, Value};

/// Default F for an equal predicate with no index statistics.
pub const DEFAULT_EQ: f64 = 1.0 / 10.0;
/// Default F for an open-ended comparison.
pub const DEFAULT_RANGE: f64 = 1.0 / 3.0;
/// Default F for BETWEEN.
pub const DEFAULT_BETWEEN: f64 = 1.0 / 4.0;
/// Cap for IN-list selectivity ("allowed to be no more than 1/2").
pub const IN_LIST_CAP: f64 = 0.5;

/// Selectivity estimator for one query block.
pub struct Selectivity<'a> {
    catalog: &'a Catalog,
    tables: &'a [BoundTable],
    query: &'a BoundQuery,
}

impl<'a> Selectivity<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a BoundQuery) -> Self {
        Selectivity { catalog, tables: &query.tables, query }
    }

    /// F for a boolean factor.
    pub fn factor(&self, f: &Factor) -> f64 {
        self.bexpr(&f.expr)
    }

    /// F for any bound boolean expression.
    pub fn bexpr(&self, e: &BExpr) -> f64 {
        let f = match e {
            BExpr::Cmp { op, left, right } => self.cmp(*op, left, right),
            BExpr::Between { expr, low, high, negated } => {
                let f = self.between(expr, low, high);
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
            BExpr::InList { expr, list, negated } => {
                let f = self.in_list(expr, list);
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
            BExpr::InSubquery { subquery, negated, .. } => {
                let f = self.in_subquery(*subquery);
                if *negated {
                    1.0 - f
                } else {
                    f
                }
            }
            // (pred1) OR (pred2): F = F1 + F2 - F1*F2, folded over children.
            BExpr::Or(children) => {
                children.iter().map(|c| self.bexpr(c)).fold(0.0, |acc, f| acc + f - acc * f)
            }
            // (pred1) AND (pred2): F = F1 * F2 — "this assumes that column
            // values are independent".
            BExpr::And(children) => children.iter().map(|c| self.bexpr(c)).product(),
            // NOT pred: F = 1 - F(pred).
            BExpr::Not(inner) => 1.0 - self.bexpr(inner),
            BExpr::Const(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
        };
        clamp(f)
    }

    /// ICARD of the index whose leading key column is `col`, if any —
    /// "if there is an index on column".
    fn icard(&self, col: ColId) -> Option<f64> {
        let rel = self.tables.get(col.table)?.rel;
        let idx = self.catalog.leading_index_on(rel, col.col)?;
        if idx.stats.icard == 0 {
            return None;
        }
        Some(card_f64(idx.stats.icard))
    }

    /// Interpolation `(v - low)/(high - low)` over the key range of the
    /// index on `col`, when the column is arithmetic and the value is known
    /// at access path selection time.
    fn interpolate(&self, col: ColId, v: &Value) -> Option<f64> {
        let rel = self.tables.get(col.table)?.rel;
        let idx = self.catalog.leading_index_on(rel, col.col)?;
        idx.stats.interpolate(v)
    }

    fn cmp(&self, op: CompareOp, left: &SExpr, right: &SExpr) -> f64 {
        // Normalize so a bare column (of this block) is on the left.
        let (col, other, op) = match (left.as_col(), right.as_col()) {
            (Some(a), Some(b)) => return self.col_vs_col(op, a, b),
            (Some(a), None) => (Some(a), right, op),
            (None, Some(b)) => (Some(b), left, op.flipped()),
            (None, None) => (None, right, op),
        };
        match op {
            CompareOp::Eq => self.eq_sel(col),
            CompareOp::Ne => clamp(1.0 - self.eq_sel(col)),
            CompareOp::Gt | CompareOp::Ge => self.open_range(col, other, true),
            CompareOp::Lt | CompareOp::Le => self.open_range(col, other, false),
        }
    }

    /// `column = value`: 1/ICARD if an index exists on the column
    /// ("this assumes an even distribution of tuples among the index key
    /// values"), else 1/10. The value need not be known: the same formula
    /// applies to parameters and scalar-subquery operands.
    fn eq_sel(&self, col: Option<ColId>) -> f64 {
        match col.and_then(|c| self.icard(c)) {
            // `icard()` filters ICARD = 0, but clamp the denominator anyway
            // so a stale/corrupt catalog entry can never mint an infinite F.
            Some(icard) => 1.0 / icard.max(1.0),
            None => DEFAULT_EQ,
        }
    }

    /// `column1 = column2` (and other column-column comparisons).
    fn col_vs_col(&self, op: CompareOp, a: ColId, b: ColId) -> f64 {
        match op {
            CompareOp::Eq => match (self.icard(a), self.icard(b)) {
                // "assumes that each key value in the index with the smaller
                // cardinality has a matching value in the other index"
                (Some(ia), Some(ib)) => 1.0 / ia.max(ib),
                (Some(i), None) | (None, Some(i)) => 1.0 / i,
                (None, None) => DEFAULT_EQ,
            },
            CompareOp::Ne => clamp(1.0 - self.col_vs_col(CompareOp::Eq, a, b)),
            // Open comparison between two columns: no interpolation is
            // possible, use the range default.
            _ => DEFAULT_RANGE,
        }
    }

    /// `column > value` (open-ended comparison): linear interpolation when
    /// the column is arithmetic and the value is known at access path
    /// selection time; otherwise 1/3.
    fn open_range(&self, col: Option<ColId>, other: &SExpr, greater: bool) -> f64 {
        if let (Some(c), SExpr::Lit(v)) = (col, other) {
            // Interpolation over low/high catalog keys can go non-finite
            // (e.g. NaN Float statistics); fall back to the Table 1 default
            // rather than letting NaN reach the cost formulas.
            if let Some(frac) = self.interpolate(c, v).filter(|f| f.is_finite()) {
                // frac = (value - low) / (high - low); `col > value` keeps
                // the upper part of the range.
                return clamp(if greater { 1.0 - frac } else { frac });
            }
        }
        DEFAULT_RANGE
    }

    /// `column BETWEEN v1 AND v2`: ratio of the BETWEEN range to the whole
    /// key range when interpolable; otherwise 1/4.
    fn between(&self, expr: &SExpr, low: &SExpr, high: &SExpr) -> f64 {
        if let (Some(c), SExpr::Lit(lo), SExpr::Lit(hi)) = (expr.as_col(), low, high) {
            if let (Some(flo), Some(fhi)) = (
                self.interpolate(c, lo).filter(|f| f.is_finite()),
                self.interpolate(c, hi).filter(|f| f.is_finite()),
            ) {
                return clamp(fhi - flo);
            }
        }
        DEFAULT_BETWEEN
    }

    /// `column IN (list)`: (number of items) × F(column = value), capped
    /// at 1/2.
    fn in_list(&self, expr: &SExpr, list: &[SExpr]) -> f64 {
        let per_item = self.eq_sel(expr.as_col());
        clamp((len_f64(list.len()) * per_item).min(IN_LIST_CAP))
    }

    /// `columnA IN (subquery)`: (expected cardinality of the subquery
    /// result) / (product of the cardinalities of all the relations in the
    /// subquery's FROM-list) — i.e. the product of the subquery's own
    /// selectivity factors.
    fn in_subquery(&self, subquery: usize) -> f64 {
        let Some(def) = self.query.subqueries.get(subquery) else {
            return DEFAULT_EQ;
        };
        let sub = &def.query;
        let qcard = estimate_qcard(self.catalog, sub);
        let from_product: f64 =
            sub.tables.iter().map(|t| rel_ncard(self.catalog, t).max(1.0)).product();
        if from_product <= 0.0 || !from_product.is_finite() {
            return DEFAULT_EQ;
        }
        clamp(qcard / from_product)
    }
}

fn rel_ncard(catalog: &Catalog, t: &BoundTable) -> f64 {
    catalog.relation(t.rel).map(|r| card_f64(r.stats.ncard)).unwrap_or(1.0)
}

/// Query cardinality QCARD: "the product of the cardinalities of every
/// relation in the query block's FROM list times the product of all the
/// selectivity factors of that query block's boolean factors."
pub fn estimate_qcard(catalog: &Catalog, query: &BoundQuery) -> f64 {
    let sel = Selectivity::new(catalog, query);
    let cards: f64 = query.tables.iter().map(|t| rel_ncard(catalog, t)).product();
    let fs: f64 = query.factors.iter().map(|f| sel.factor(f)).product();
    // Every factor is clamped to [0, 1], but an overflowing FROM product
    // (or 0 × ∞ against an empty relation) must still come out finite:
    // QCARD feeds every Table 2 formula downstream.
    let qcard = cards * fs;
    if qcard.is_nan() {
        return 0.0;
    }
    qcard.clamp(0.0, f64::MAX)
}

fn clamp(f: f64) -> f64 {
    if f.is_nan() {
        return DEFAULT_EQ;
    }
    f.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use sysr_catalog::{ColumnMeta, IndexStats, RelStats};
    use sysr_rss::ColType;
    use sysr_sql::{parse_statement, Statement};

    /// Catalog with EMP(NAME,DNO,JOB,SAL) — index on DNO (icard 50, range
    /// 0..=49) and on SAL (icard 1000, range 0..=99_999) — and
    /// DEPT(DNO,LOC) with an index on DNO (icard 40).
    fn demo() -> Catalog {
        let mut cat = Catalog::new();
        let emp = cat
            .create_relation(
                "EMP",
                0,
                vec![
                    ColumnMeta::new("NAME", ColType::Str),
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("JOB", ColType::Int),
                    ColumnMeta::new("SAL", ColType::Float),
                ],
            )
            .unwrap();
        let dept = cat
            .create_relation(
                "DEPT",
                1,
                vec![ColumnMeta::new("DNO", ColType::Int), ColumnMeta::new("LOC", ColType::Str)],
            )
            .unwrap();
        cat.relation_mut(emp).unwrap().stats =
            RelStats { ncard: 10_000, tcard: 500, pfrac: 1.0, avg_width: 40.0, valid: true };
        cat.relation_mut(dept).unwrap().stats =
            RelStats { ncard: 40, tcard: 2, pfrac: 1.0, avg_width: 30.0, valid: true };
        cat.register_index(0, "EMP_DNO", emp, vec![1], false, false).unwrap();
        cat.register_index(1, "EMP_SAL", emp, vec![3], false, false).unwrap();
        cat.register_index(2, "DEPT_DNO", dept, vec![0], true, false).unwrap();
        let set = |cat: &mut Catalog, name: &str, icard, lo: f64, hi: f64| {
            let id = cat.index_by_name(name).unwrap().id;
            cat.set_index_stats(
                id,
                IndexStats {
                    icard,
                    nindx: 20,
                    leaf_pages: 18,
                    low_key: Some(Value::Float(lo)),
                    high_key: Some(Value::Float(hi)),
                    valid: true,
                },
            );
        };
        set(&mut cat, "EMP_DNO", 50, 0.0, 49.0);
        set(&mut cat, "EMP_SAL", 1000, 0.0, 99_999.0);
        set(&mut cat, "DEPT_DNO", 40, 0.0, 39.0);
        cat
    }

    fn sel_of(cat: &Catalog, sql: &str) -> f64 {
        let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
        let q = bind_select(cat, &stmt).unwrap();
        let sel = Selectivity::new(cat, &q);
        q.factors.iter().map(|f| sel.factor(f)).product()
    }

    #[test]
    fn eq_with_index_uses_icard() {
        let cat = demo();
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE DNO = 7");
        assert!((f - 1.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn eq_without_index_defaults() {
        let cat = demo();
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE JOB = 3");
        assert_eq!(f, DEFAULT_EQ);
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE NAME = 'SMITH'");
        assert_eq!(f, DEFAULT_EQ);
    }

    #[test]
    fn join_pred_uses_max_icard() {
        let cat = demo();
        let f = sel_of(&cat, "SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO");
        assert!((f - 1.0 / 50.0).abs() < 1e-12, "1/max(50,40), got {f}");
    }

    #[test]
    fn range_interpolates_when_value_known() {
        let cat = demo();
        // SAL > 75000 on range [0, 99999]: keep ~25%.
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE SAL > 74999.25");
        assert!((f - 0.25).abs() < 1e-3, "got {f}");
        // SAL < 25% point.
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE SAL < 24999.75");
        assert!((f - 0.25).abs() < 1e-3, "got {f}");
    }

    #[test]
    fn range_defaults_without_stats_or_on_strings() {
        let cat = demo();
        assert_eq!(sel_of(&cat, "SELECT NAME FROM EMP WHERE JOB > 3"), DEFAULT_RANGE);
        assert_eq!(sel_of(&cat, "SELECT NAME FROM EMP WHERE NAME > 'SMITH'"), DEFAULT_RANGE);
    }

    #[test]
    fn between_ratio_and_default() {
        let cat = demo();
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE SAL BETWEEN 0 AND 9999.9");
        assert!((f - 0.1).abs() < 1e-3, "got {f}");
        assert_eq!(sel_of(&cat, "SELECT NAME FROM EMP WHERE JOB BETWEEN 1 AND 2"), DEFAULT_BETWEEN);
    }

    #[test]
    fn in_list_multiplies_and_caps() {
        let cat = demo();
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE DNO IN (1, 2, 3)");
        assert!((f - 3.0 / 50.0).abs() < 1e-12);
        // 40 items × 1/10 = 4.0 → capped at 1/2.
        let vals: Vec<String> = (0..40).map(|i| i.to_string()).collect();
        let f = sel_of(&cat, &format!("SELECT NAME FROM EMP WHERE JOB IN ({})", vals.join(", ")));
        assert_eq!(f, IN_LIST_CAP);
    }

    #[test]
    fn or_and_not_combinators() {
        let cat = demo();
        // OR: f1 + f2 - f1*f2 with f1 = 1/50, f2 = 1/10.
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE DNO = 1 OR JOB = 2");
        let expect = 0.02 + 0.1 - 0.02 * 0.1;
        assert!((f - expect).abs() < 1e-12);
        // AND multiplies.
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE DNO = 1 AND JOB = 2");
        assert!((f - 0.002).abs() < 1e-12);
        // NOT(=) → Ne → 1 - F(eq).
        let f = sel_of(&cat, "SELECT NAME FROM EMP WHERE NOT DNO = 1");
        assert!((f - 0.98).abs() < 1e-12);
    }

    #[test]
    fn in_subquery_ratio() {
        let cat = demo();
        // Subquery: SELECT DNO FROM DEPT WHERE LOC='DENVER'
        // F(LOC='DENVER') = 1/10 (no index) → qcard = 40 * 0.1 = 4.
        // FROM product = 40 → F(IN) = 4/40 = 0.1.
        let f = sel_of(
            &cat,
            "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
        );
        assert!((f - 0.1).abs() < 1e-12, "got {f}");
    }

    #[test]
    fn qcard_estimate_multiplies_cards_and_sels() {
        let cat = demo();
        let Statement::Select(stmt) =
            parse_statement("SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND JOB = 1")
                .unwrap()
        else {
            panic!()
        };
        let q = bind_select(&cat, &stmt).unwrap();
        let qcard = estimate_qcard(&cat, &q);
        // 10000 * 40 * (1/50) * (1/10) = 800
        assert!((qcard - 800.0).abs() < 1e-6, "got {qcard}");
    }

    #[test]
    fn scalar_subquery_operand_gets_eq_default() {
        let cat = demo();
        // JOB has no index: 1/10; with index on DNO: 1/50.
        let f =
            sel_of(&cat, "SELECT NAME FROM EMP WHERE DNO = (SELECT DNO FROM DEPT WHERE LOC='X')");
        assert!((f - 1.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn zero_icard_and_nan_stats_never_produce_nan() {
        let mut cat = demo();
        // ICARD = 0 (index on an emptied column) and NaN interpolation keys.
        let dno = cat.index_by_name("EMP_DNO").unwrap().id;
        cat.set_index_stats(
            dno,
            IndexStats {
                icard: 0,
                nindx: 1,
                leaf_pages: 1,
                low_key: Some(Value::Float(f64::NAN)),
                high_key: Some(Value::Float(f64::NAN)),
                valid: true,
            },
        );
        for sql in [
            "SELECT NAME FROM EMP WHERE DNO = 7",
            "SELECT NAME FROM EMP WHERE DNO > 7",
            "SELECT NAME FROM EMP WHERE DNO BETWEEN 3 AND 9",
            "SELECT NAME FROM EMP WHERE DNO IN (1, 2, 3)",
            "SELECT NAME FROM EMP WHERE DNO = 1 OR DNO = 2 AND NOT DNO = 3",
        ] {
            let f = sel_of(&cat, sql);
            assert!(f.is_finite() && (0.0..=1.0).contains(&f), "{sql} → {f}");
        }
    }

    #[test]
    fn empty_relation_gives_zero_finite_qcard() {
        let mut cat = demo();
        let emp = cat.relation_by_name("EMP").unwrap().id;
        cat.set_relation_stats(
            emp,
            RelStats { ncard: 0, tcard: 0, pfrac: 1.0, avg_width: 32.0, valid: true },
        );
        let Statement::Select(stmt) =
            parse_statement("SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO").unwrap()
        else {
            panic!()
        };
        let q = bind_select(&cat, &stmt).unwrap();
        let qcard = estimate_qcard(&cat, &q);
        assert!(qcard.is_finite() && qcard == 0.0, "got {qcard}");
    }

    #[test]
    fn selectivities_stay_in_unit_interval() {
        let cat = demo();
        for sql in [
            "SELECT NAME FROM EMP WHERE SAL > 999999",
            "SELECT NAME FROM EMP WHERE SAL < -5",
            "SELECT NAME FROM EMP WHERE SAL BETWEEN 90000 AND 80000",
            "SELECT NAME FROM EMP WHERE NOT (DNO = 1 OR DNO = 2)",
        ] {
            let f = sel_of(&cat, sql);
            assert!((0.0..=1.0).contains(&f), "{sql} → {f}");
        }
    }
}
