//! Single-relation access path selection (§4).
//!
//! For one relation, "the cheapest access path is obtained by evaluating
//! the cost for each available access path (each index on the relation,
//! plus a segment scan)". An index *matches* a set of predicates when they
//! are sargable and their columns form an initial substring of the index
//! key (§4): consecutive equal predicates on the leading key columns plus
//! at most one range predicate on the next column become the probe's
//! start/stop keys; their combined selectivity is the `F(preds)` of the
//! Table 2 formulas.
//!
//! The same enumeration serves two roles in the join search: standalone
//! scans (no outer tuples available) and *inner* scans of a join, where
//! join predicates connecting the relation to the already-joined set
//! become additional sargable predicates whose probe operands are outer
//! columns — this is how `C-inner(path)` gets cheap when the inner
//! relation has an index on its join column.

use crate::bitset::TableSet;
use crate::cost::{Cost, CostModel};
use crate::num::card_f64;
use crate::order::OrderInfo;
use crate::plan::{Access, IndexRange, PlanExpr, PlanNode, SargAtom, SargFactor, ScanPlan};
use crate::query::{BExpr, BoundQuery, ColId, Factor, Operand, SExpr};
use crate::selectivity::Selectivity;
use crate::OptimizerConfig;
use sysr_catalog::{Catalog, IndexMeta, RelationMeta};
use sysr_rss::CompareOp;

/// Shared planning context for one query block.
pub struct PlanCtx<'a> {
    pub catalog: &'a Catalog,
    pub query: &'a BoundQuery,
    pub model: CostModel,
    pub config: OptimizerConfig,
    /// Selectivity factor per boolean factor (Table 1), precomputed.
    pub fsel: Vec<f64>,
    pub orders: OrderInfo,
    /// Per FROM-list table: the set of its columns the query touches
    /// anywhere (SELECT list, factors, GROUP BY, ORDER BY). An index whose
    /// key covers this set can answer without data pages.
    needed_cols: Vec<std::collections::HashSet<usize>>,
}

impl<'a> PlanCtx<'a> {
    pub fn new(catalog: &'a Catalog, query: &'a BoundQuery, config: OptimizerConfig) -> Self {
        let sel = Selectivity::new(catalog, query);
        let fsel = query.factors.iter().map(|f| sel.factor(f)).collect();
        let orders = OrderInfo::build(query);
        let mut needed_cols = vec![std::collections::HashSet::new(); query.tables.len()];
        {
            let mut note = |c: ColId| {
                if let Some(set) = needed_cols.get_mut(c.table) {
                    set.insert(c.col);
                }
            };
            for (_, e) in &query.select {
                e.visit_cols(&mut note);
            }
            for f in &query.factors {
                f.expr.visit_scalar(&mut |e| e.visit_cols(&mut note));
            }
            for &c in &query.group_by {
                note(c);
            }
            for &(c, _) in &query.order_by {
                note(c);
            }
            // Columns of this block referenced by subqueries (correlation
            // into us) must also come off the data page.
            fn sub_refs(q: &BoundQuery, depth: usize, note: &mut impl FnMut(ColId)) {
                let mut scan = |e: &SExpr| {
                    collect_outer_at(e, depth, note);
                };
                for f in &q.factors {
                    f.expr.visit_scalar(&mut scan);
                }
                for (_, e) in &q.select {
                    scan(e);
                }
                for sub in &q.subqueries {
                    sub_refs(&sub.query, depth + 1, note);
                }
            }
            for sub in &query.subqueries {
                sub_refs(&sub.query, 1, &mut note);
            }
        }
        PlanCtx {
            catalog,
            query,
            model: CostModel::new(config.w, config.buffer_pages),
            config,
            fsel,
            orders,
            needed_cols,
        }
    }

    /// Whether `key_cols` covers every column the query needs from
    /// `table`.
    pub fn index_covers(&self, table: usize, key_cols: &[usize]) -> bool {
        self.needed_cols[table].iter().all(|c| key_cols.contains(c))
    }

    pub fn relation(&self, table: usize) -> &RelationMeta {
        // audit:allow(no-unwrap) — binder resolved every table id against this catalog
        self.catalog.relation(self.query.tables[table].rel).expect("bound table exists in catalog")
    }

    /// NCARD of a FROM-list table.
    pub fn ncard(&self, table: usize) -> f64 {
        card_f64(self.relation(table).stats.ncard)
    }

    /// Mean tuple width of a FROM-list table.
    pub fn width(&self, table: usize) -> f64 {
        self.relation(table).stats.avg_width
    }

    /// Composite tuple width for a set of joined tables.
    pub fn composite_width(&self, tables: TableSet) -> f64 {
        tables.iter().map(|t| self.width(t)).sum()
    }

    /// Estimated number of runs when `rows` tuples arrive grouped on
    /// `cols` (the satisfied prefix of a partial sort): the product of
    /// per-column distinct-value estimates — a leading index's ICARD when
    /// one exists ("this assumes an even distribution of tuples among the
    /// index key values", Table 1), else the Table 1 equal-predicate
    /// default of 10 distinct values — capped at `rows`.
    pub fn run_count(&self, cols: &[ColId], rows: f64) -> f64 {
        let runs: f64 = cols
            .iter()
            .map(|c| {
                self.catalog
                    .leading_index_on(self.query.tables[c.table].rel, c.col)
                    .map(|i| card_f64(i.stats.icard))
                    .filter(|&v| v >= 1.0)
                    .unwrap_or(1.0 / crate::selectivity::DEFAULT_EQ)
            })
            .product();
        runs.clamp(1.0, rows.max(1.0))
    }

    /// Estimated rows of the join of `tables`: product of cardinalities
    /// times the selectivities of every factor local to the set
    /// ("N = (product of the cardinalities of all relations T of the join
    /// so far) * (product of the selectivity factors of all applicable
    /// predicates)", §5).
    pub fn subset_rows(&self, tables: TableSet) -> f64 {
        let cards: f64 = tables.iter().map(|t| self.ncard(t)).product();
        let sels: f64 = self
            .query
            .factors
            .iter()
            .enumerate()
            .filter(|(_, f)| !f.tables.is_empty() && f.tables.is_subset_of(tables))
            .map(|(i, _)| self.fsel[i])
            .product();
        cards * sels
    }
}

/// One costed access path for a single relation.
#[derive(Debug, Clone)]
pub struct AccessCandidate {
    pub scan: ScanPlan,
    /// Cost of one full execution of the scan (standalone) or one probe
    /// (as a join inner).
    pub cost: Cost,
    /// Produced tuple order.
    pub order: Vec<ColId>,
    /// Rows emitted per execution: `NCARD × Π F(applied factors)`.
    pub out_rows: f64,
    /// Predicted RSI calls per execution (sargable factors only filter
    /// below the interface).
    pub rsicard: f64,
    /// All factor indexes applied by this scan (sarg + residual).
    pub applied: Vec<usize>,
}

impl AccessCandidate {
    /// Wrap into an annotated plan node.
    pub fn into_plan(self) -> PlanExpr {
        PlanExpr {
            node: PlanNode::Scan(self.scan),
            cost: self.cost,
            rows: self.out_rows,
            order: self.order,
        }
    }
}

/// Whether an operand can be resolved given outer tables `available`.
fn operand_available(op: &Operand, available: TableSet, query: &BoundQuery) -> bool {
    match op {
        Operand::Lit(_) | Operand::Outer { .. } => true,
        Operand::Col(c) => available.contains(c.table),
        // A correlated scalar subquery may depend on this block's own
        // tables; its value is not fixed per scan, so it cannot be a probe
        // or SARG operand.
        Operand::Subquery(i) => query.subqueries.get(*i).map(|s| !s.correlated).unwrap_or(false),
    }
}

/// Try to compile a boolean factor into SARG form (DNF of atoms) for a
/// scan of `table` with probe values from `available`.
fn sargify(
    expr: &BExpr,
    table: usize,
    available: TableSet,
    query: &BoundQuery,
) -> Option<Vec<Vec<SargAtom>>> {
    match expr {
        BExpr::Cmp { op, left, right } => {
            let (col, operand, op) = split_cmp(*op, left, right, table)?;
            if !operand_available(&operand, available, query) {
                return None;
            }
            Some(vec![vec![SargAtom { col, op, operand }]])
        }
        BExpr::Between { expr, low, high, negated } => {
            let col = local_col(expr, table)?;
            let lo = low.as_operand_excluding(table)?;
            let hi = high.as_operand_excluding(table)?;
            if !operand_available(&lo, available, query)
                || !operand_available(&hi, available, query)
            {
                return None;
            }
            if *negated {
                // NOT BETWEEN → col < lo OR col > hi.
                Some(vec![
                    vec![SargAtom { col, op: CompareOp::Lt, operand: lo }],
                    vec![SargAtom { col, op: CompareOp::Gt, operand: hi }],
                ])
            } else {
                Some(vec![vec![
                    SargAtom { col, op: CompareOp::Ge, operand: lo },
                    SargAtom { col, op: CompareOp::Le, operand: hi },
                ]])
            }
        }
        BExpr::InList { expr, list, negated } => {
            let col = local_col(expr, table)?;
            let mut operands = Vec::with_capacity(list.len());
            for e in list {
                let op = e.as_operand_excluding(table)?;
                if !operand_available(&op, available, query) {
                    return None;
                }
                operands.push(op);
            }
            if *negated {
                // NOT IN (a, b) → col <> a AND col <> b: one conjunct.
                Some(vec![operands
                    .into_iter()
                    .map(|operand| SargAtom { col, op: CompareOp::Ne, operand })
                    .collect()])
            } else {
                // IN (a, b) → col = a OR col = b: DNF disjuncts.
                Some(
                    operands
                        .into_iter()
                        .map(|operand| vec![SargAtom { col, op: CompareOp::Eq, operand }])
                        .collect(),
                )
            }
        }
        // OR trees whose every leaf sargifies onto this table also become
        // SARGs ("SARGS are expressed as a boolean expression of such
        // predicates in disjunctive normal form", §3).
        BExpr::Or(children) => {
            let mut dnf = Vec::new();
            for c in children {
                let child = sargify(c, table, available, query)?;
                dnf.extend(child);
            }
            Some(dnf)
        }
        // AND inside a factor (can appear under OR rewrites): conjoin by
        // cross-product of the children's DNFs — only if small.
        BExpr::And(children) => {
            let mut dnf: Vec<Vec<SargAtom>> = vec![vec![]];
            for c in children {
                let child = sargify(c, table, available, query)?;
                let mut next = Vec::new();
                for base in &dnf {
                    for disj in &child {
                        let mut merged = base.clone();
                        merged.extend(disj.iter().cloned());
                        next.push(merged);
                    }
                }
                if next.len() > 64 {
                    return None; // avoid DNF blowup; fall back to residual
                }
                dnf = next;
            }
            Some(dnf)
        }
        _ => None,
    }
}

/// Extract `(local column, operand, op)` from a comparison, flipping so the
/// local column is on the left.
fn split_cmp(
    op: CompareOp,
    left: &SExpr,
    right: &SExpr,
    table: usize,
) -> Option<(usize, Operand, CompareOp)> {
    if let Some(col) = local_col(left, table) {
        let operand = right.as_operand_excluding(table)?;
        return Some((col, operand, op));
    }
    if let Some(col) = local_col(right, table) {
        let operand = left.as_operand_excluding(table)?;
        return Some((col, operand, op.flipped()));
    }
    None
}

/// Collect `Outer` references that reach exactly `depth` levels up.
fn collect_outer_at(e: &SExpr, depth: usize, note: &mut impl FnMut(ColId)) {
    match e {
        SExpr::Outer { level, col } if *level == depth => note(*col),
        SExpr::Arith { left, right, .. } => {
            collect_outer_at(left, depth, note);
            collect_outer_at(right, depth, note);
        }
        SExpr::Neg(inner) => collect_outer_at(inner, depth, note),
        SExpr::Agg(crate::query::AggCall { arg: Some(a), .. }) => collect_outer_at(a, depth, note),
        _ => {}
    }
}

fn local_col(e: &SExpr, table: usize) -> Option<usize> {
    match e.as_col() {
        Some(c) if c.table == table => Some(c.col),
        _ => None,
    }
}

/// A factor classified for one scan.
enum FactorUse {
    Sarg(Vec<Vec<SargAtom>>),
    Residual,
}

/// Enumerate every access path for `table`, applying all factors whose
/// other referenced tables are in `available` (empty for standalone
/// scans). Returns one candidate per index plus the segment scan.
pub fn access_paths(ctx: &PlanCtx<'_>, table: usize, available: TableSet) -> Vec<AccessCandidate> {
    let rel = ctx.relation(table);
    let stats = &rel.stats;
    let ncard = card_f64(stats.ncard);
    let me = TableSet::single(table);

    // Applicable factors: reference this table, everything else available.
    let applicable: Vec<(usize, &Factor)> = ctx
        .query
        .factors
        .iter()
        .enumerate()
        .filter(|(_, f)| f.tables.contains(table) && f.tables.minus(me).is_subset_of(available))
        .collect();

    // Classify each factor once.
    let uses: Vec<(usize, FactorUse)> = applicable
        .iter()
        .map(|&(i, f)| match sargify(&f.expr, table, available, ctx.query) {
            Some(dnf) => (i, FactorUse::Sarg(dnf)),
            None => (i, FactorUse::Residual),
        })
        .collect();

    let applied: Vec<usize> = uses.iter().map(|&(i, _)| i).collect();
    let sel_all: f64 = applied.iter().map(|&i| ctx.fsel[i]).product();
    let sel_sargable: f64 = uses
        .iter()
        .filter(|(_, u)| matches!(u, FactorUse::Sarg(_)))
        .map(|&(i, _)| ctx.fsel[i])
        .product();
    let out_rows = ncard * sel_all;
    let rsicard = ncard * sel_sargable;

    let sargs: Vec<SargFactor> = uses
        .iter()
        .filter_map(|(i, u)| match u {
            FactorUse::Sarg(dnf) => Some(SargFactor { factor: *i, dnf: dnf.clone() }),
            FactorUse::Residual => None,
        })
        .collect();
    let residual: Vec<usize> =
        uses.iter().filter_map(|(i, u)| matches!(u, FactorUse::Residual).then_some(*i)).collect();

    let mut candidates = Vec::new();

    // ---- the segment scan ---------------------------------------------
    candidates.push(AccessCandidate {
        scan: ScanPlan {
            table,
            access: Access::Segment,
            sargs: sargs.clone(),
            residual: residual.clone(),
        },
        cost: ctx.model.segment_scan(card_f64(stats.tcard), stats.pfrac, rsicard),
        order: Vec::new(),
        out_rows,
        rsicard,
        applied: applied.clone(),
    });

    // ---- one candidate per index ----------------------------------------
    for idx in ctx.catalog.indexes_on(rel.id) {
        candidates.push(index_candidate(
            ctx,
            table,
            idx,
            &uses,
            &sargs,
            &residual,
            &applied,
            ncard,
            card_f64(stats.tcard),
            out_rows,
            rsicard,
        ));
    }
    candidates
}

#[allow(clippy::too_many_arguments)]
fn index_candidate(
    ctx: &PlanCtx<'_>,
    table: usize,
    idx: &IndexMeta,
    uses: &[(usize, FactorUse)],
    sargs: &[SargFactor],
    residual: &[usize],
    applied: &[usize],
    ncard: f64,
    tcard: f64,
    out_rows: f64,
    rsicard: f64,
) -> AccessCandidate {
    // Find matching predicates: equality atoms on consecutive leading key
    // columns, then at most one range on the next column. Only simple
    // single-atom SARG factors participate (an OR tree cannot be a probe).
    let mut eq_prefix: Vec<Operand> = Vec::new();
    let mut matching: Vec<usize> = Vec::new();
    let mut range: Option<IndexRange> = None;

    let single_atom = |u: &FactorUse| -> Option<SargAtom> {
        match u {
            FactorUse::Sarg(dnf) if dnf.len() == 1 && dnf[0].len() == 1 => Some(dnf[0][0].clone()),
            _ => None,
        }
    };
    // BETWEEN compiles to one conjunct of two atoms on the same column.
    let between_atoms = |u: &FactorUse| -> Option<(SargAtom, SargAtom)> {
        match u {
            FactorUse::Sarg(dnf) if dnf.len() == 1 && dnf[0].len() == 2 => {
                Some((dnf[0][0].clone(), dnf[0][1].clone()))
            }
            _ => None,
        }
    };

    for (pos, &key_col) in idx.key_cols.iter().enumerate() {
        // Equal predicate on this key column?
        let eq = uses.iter().find(|(i, u)| {
            !matching.contains(i)
                && single_atom(u)
                    .map(|a| a.col == key_col && a.op == CompareOp::Eq)
                    .unwrap_or(false)
        });
        if let Some(&(i, ref u)) = eq {
            // audit:allow(no-unwrap) — the find() above only yields factors with a single atom
            let atom = single_atom(u).expect("checked");
            eq_prefix.push(atom.operand);
            matching.push(i);
            continue;
        }
        // No equality: try range predicates on this column, then stop.
        let mut r = IndexRange::default();
        for (i, u) in uses {
            if matching.contains(i) {
                continue;
            }
            if let Some(atom) = single_atom(u) {
                if atom.col != key_col {
                    continue;
                }
                match atom.op {
                    CompareOp::Gt if r.lower.is_none() => {
                        r.lower = Some((atom.operand, false));
                        matching.push(*i);
                    }
                    CompareOp::Ge if r.lower.is_none() => {
                        r.lower = Some((atom.operand, true));
                        matching.push(*i);
                    }
                    CompareOp::Lt if r.upper.is_none() => {
                        r.upper = Some((atom.operand, false));
                        matching.push(*i);
                    }
                    CompareOp::Le if r.upper.is_none() => {
                        r.upper = Some((atom.operand, true));
                        matching.push(*i);
                    }
                    _ => {}
                }
            } else if let Some((lo, hi)) = between_atoms(u) {
                if lo.col == key_col
                    && hi.col == key_col
                    && lo.op == CompareOp::Ge
                    && hi.op == CompareOp::Le
                    && r.lower.is_none()
                    && r.upper.is_none()
                {
                    r.lower = Some((lo.operand, true));
                    r.upper = Some((hi.operand, true));
                    matching.push(*i);
                }
            }
        }
        if r.lower.is_some() || r.upper.is_some() {
            range = Some(r);
        }
        let _ = pos;
        break;
    }

    let istats = &idx.stats;
    let nindx = card_f64(istats.nindx);
    let f_matching: f64 = matching.iter().map(|&i| ctx.fsel[i]).product();
    let unique_full_eq = idx.unique && eq_prefix.len() == idx.key_cols.len();
    let index_only = ctx.config.index_only_scans && ctx.index_covers(table, &idx.key_cols);

    let cost = if index_only {
        // Extension beyond the paper: only index pages are fetched. A
        // probe touches F × NINDX of them; a full key-order scan all of
        // them; the unique-equal probe one root-to-leaf path (≈1 page in
        // the paper's accounting).
        if unique_full_eq {
            Cost::new(1.0, 1.0)
        } else if !matching.is_empty() {
            Cost::new(f_matching * nindx, rsicard)
        } else {
            Cost::new(nindx, rsicard)
        }
    } else if unique_full_eq {
        // Table 2 situation 1: 1 + 1 + W.
        ctx.model.unique_index_eq()
    } else if !matching.is_empty() {
        if idx.clustered {
            ctx.model.clustered_matching(f_matching, nindx, tcard, rsicard)
        } else {
            ctx.model.nonclustered_matching(f_matching, nindx, ncard, tcard, rsicard)
        }
    } else if idx.clustered {
        ctx.model.clustered_nonmatching(nindx, tcard, rsicard)
    } else {
        ctx.model.nonclustered_nonmatching(nindx, ncard, tcard, rsicard)
    };

    let order: Vec<ColId> = idx.key_cols.iter().map(|&c| ColId::new(table, c)).collect();
    AccessCandidate {
        scan: ScanPlan {
            table,
            access: Access::Index {
                index: idx.id,
                eq_prefix,
                range,
                matching: matching.clone(),
                index_only,
            },
            sargs: sargs.to_vec(),
            residual: residual.to_vec(),
        },
        cost,
        order,
        out_rows: if unique_full_eq { out_rows.min(1.0) } else { out_rows },
        rsicard: if unique_full_eq { rsicard.min(1.0) } else { rsicard },
        applied: applied.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind_select;
    use sysr_catalog::{ColumnMeta, IndexStats, RelStats};
    use sysr_rss::{ColType, Value};
    use sysr_sql::{parse_statement, Statement};

    /// EMP(EMPNO, NAME, DNO, JOB, SAL): unique clustered index on EMPNO,
    /// non-clustered on DNO, non-clustered on (DNO, JOB).
    fn demo() -> Catalog {
        let mut cat = Catalog::new();
        let emp = cat
            .create_relation(
                "EMP",
                0,
                vec![
                    ColumnMeta::new("EMPNO", ColType::Int),
                    ColumnMeta::new("NAME", ColType::Str),
                    ColumnMeta::new("DNO", ColType::Int),
                    ColumnMeta::new("JOB", ColType::Int),
                    ColumnMeta::new("SAL", ColType::Float),
                ],
            )
            .unwrap();
        cat.set_relation_stats(
            emp,
            RelStats { ncard: 10_000, tcard: 500, pfrac: 1.0, avg_width: 40.0, valid: true },
        );
        cat.register_index(0, "EMP_EMPNO", emp, vec![0], true, true).unwrap();
        cat.register_index(1, "EMP_DNO", emp, vec![2], false, false).unwrap();
        cat.register_index(2, "EMP_DNO_JOB", emp, vec![2, 3], false, false).unwrap();
        for (id, icard, nindx) in [(0u32, 10_000u64, 60u64), (1, 50, 40), (2, 600, 55)] {
            cat.set_index_stats(
                id,
                IndexStats {
                    icard,
                    nindx,
                    leaf_pages: nindx - 2,
                    low_key: Some(Value::Int(0)),
                    high_key: Some(Value::Int(icard as i64 - 1)),
                    valid: true,
                },
            );
        }
        cat
    }

    fn paths_for(cat: &Catalog, sql: &str) -> (Vec<AccessCandidate>, BoundQuery) {
        let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
        let q = bind_select(cat, &stmt).unwrap();
        let ctx = PlanCtx::new(cat, &q, OptimizerConfig::default());
        (access_paths(&ctx, 0, TableSet::EMPTY), q)
    }

    fn index_path(cands: &[AccessCandidate], idx: u32) -> &AccessCandidate {
        cands
            .iter()
            .find(|c| matches!(&c.scan.access, Access::Index { index, .. } if *index == idx))
            .unwrap()
    }

    #[test]
    fn enumerates_segment_plus_each_index() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP");
        assert_eq!(cands.len(), 4); // segment + 3 indexes
        assert!(matches!(cands[0].scan.access, Access::Segment));
    }

    #[test]
    fn unique_eq_costs_two_pages_plus_w() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE EMPNO = 42");
        let c = index_path(&cands, 0);
        assert_eq!(c.cost, Cost::new(2.0, 1.0));
        assert!(c.out_rows <= 1.0);
        let Access::Index { eq_prefix, .. } = &c.scan.access else { panic!() };
        assert_eq!(eq_prefix, &vec![Operand::Lit(Value::Int(42))]);
    }

    #[test]
    fn matching_eq_on_nonunique_index() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO = 7");
        let c = index_path(&cands, 1);
        let Access::Index { eq_prefix, matching, .. } = &c.scan.access else { panic!() };
        assert_eq!(eq_prefix.len(), 1);
        assert_eq!(matching.len(), 1);
        // F = 1/50 retrieves 200 scattered tuples: the Cardenas estimate
        // (~166 distinct pages) exceeds the 64-page buffer, so the
        // per-tuple variant applies: F*(NINDX+NCARD) = 200.8.
        assert!((c.cost.pages - 200.8).abs() < 1e-9, "pages={}", c.cost.pages);
        assert!((c.rsicard - 200.0).abs() < 1e-9);
        // Segment scan costs TCARD/P = 500 pages: the index wins.
        assert!(c.cost.pages < cands[0].cost.pages);
    }

    #[test]
    fn multi_column_prefix_match() {
        let cat = demo();
        let (cands, _) =
            paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO = 7 AND JOB = 3 AND SAL > 10");
        let c = index_path(&cands, 2);
        let Access::Index { eq_prefix, matching, range, .. } = &c.scan.access else { panic!() };
        assert_eq!(eq_prefix.len(), 2, "DNO and JOB both match the (DNO,JOB) index");
        assert_eq!(matching.len(), 2);
        assert!(range.is_none(), "SAL is not the next key column");
        // SAL > 10 is still a SARG.
        assert_eq!(c.scan.sargs.len(), 3);
        // The single-column DNO index matches only DNO.
        let c1 = index_path(&cands, 1);
        let Access::Index { matching, .. } = &c1.scan.access else { panic!() };
        assert_eq!(matching.len(), 1);
    }

    #[test]
    fn range_bounds_on_leading_column() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO > 10 AND DNO <= 20");
        let c = index_path(&cands, 1);
        let Access::Index { eq_prefix, range, matching, .. } = &c.scan.access else { panic!() };
        assert!(eq_prefix.is_empty());
        let r = range.as_ref().unwrap();
        assert_eq!(r.lower, Some((Operand::Lit(Value::Int(10)), false)));
        assert_eq!(r.upper, Some((Operand::Lit(Value::Int(20)), true)));
        assert_eq!(matching.len(), 2);
    }

    #[test]
    fn between_becomes_range_probe() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO BETWEEN 5 AND 9");
        let c = index_path(&cands, 1);
        let Access::Index { range, matching, .. } = &c.scan.access else { panic!() };
        let r = range.as_ref().unwrap();
        assert_eq!(r.lower, Some((Operand::Lit(Value::Int(5)), true)));
        assert_eq!(r.upper, Some((Operand::Lit(Value::Int(9)), true)));
        assert_eq!(matching.len(), 1);
    }

    #[test]
    fn eq_prefix_stops_at_gap() {
        let cat = demo();
        // JOB = 3 alone does not match (DNO,JOB): JOB is not the leading
        // column.
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE JOB = 3");
        let c = index_path(&cands, 2);
        let Access::Index { eq_prefix, matching, .. } = &c.scan.access else { panic!() };
        assert!(eq_prefix.is_empty());
        assert!(matching.is_empty());
        // But it is still applied as a SARG.
        assert_eq!(c.scan.sargs.len(), 1);
    }

    #[test]
    fn or_tree_becomes_dnf_sarg() {
        let cat = demo();
        let (cands, _) =
            paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO = 1 OR (JOB = 2 AND SAL > 5)");
        let seg = &cands[0];
        assert_eq!(seg.scan.sargs.len(), 1);
        assert_eq!(seg.scan.sargs[0].dnf.len(), 2);
        assert_eq!(seg.scan.sargs[0].dnf[1].len(), 2);
        assert!(seg.scan.residual.is_empty());
    }

    #[test]
    fn in_list_is_dnf_not_probe() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP WHERE DNO IN (1, 2, 3)");
        let c = index_path(&cands, 1);
        let Access::Index { matching, eq_prefix, .. } = &c.scan.access else { panic!() };
        assert!(matching.is_empty() && eq_prefix.is_empty());
        assert_eq!(c.scan.sargs[0].dnf.len(), 3);
    }

    #[test]
    fn join_predicate_probes_when_outer_available() {
        let mut cat = demo();
        let dept = cat
            .create_relation(
                "DEPT",
                1,
                vec![ColumnMeta::new("DNO", ColType::Int), ColumnMeta::new("LOC", ColType::Str)],
            )
            .unwrap();
        cat.set_relation_stats(
            dept,
            RelStats { ncard: 50, tcard: 2, pfrac: 1.0, avg_width: 24.0, valid: true },
        );
        let Statement::Select(stmt) =
            parse_statement("SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO").unwrap()
        else {
            panic!()
        };
        let q = bind_select(&cat, &stmt).unwrap();
        let ctx = PlanCtx::new(&cat, &q, OptimizerConfig::default());
        // With DEPT (table 1) available, EMP's DNO index matches the join
        // predicate; the probe operand is DEPT.DNO.
        let cands = access_paths(&ctx, 0, TableSet::single(1));
        let c = index_path(&cands, 1);
        let Access::Index { eq_prefix, matching, .. } = &c.scan.access else { panic!() };
        assert_eq!(eq_prefix, &vec![Operand::Col(ColId::new(1, 0))]);
        assert_eq!(matching.len(), 1);
        // Standalone, the join predicate cannot be applied at all.
        let cands = access_paths(&ctx, 0, TableSet::EMPTY);
        let c = index_path(&cands, 1);
        let Access::Index { matching, .. } = &c.scan.access else { panic!() };
        assert!(matching.is_empty());
        assert!(cands[0].applied.is_empty());
    }

    #[test]
    fn clustered_index_cheaper_than_nonclustered_when_unselective() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP");
        let clustered = index_path(&cands, 0); // clustered, non-matching
        let nonclustered = index_path(&cands, 1); // non-clustered, non-matching
                                                  // clustered: NINDX + TCARD = 60+500 = 560
        assert!((clustered.cost.pages - 560.0).abs() < 1e-9);
        // non-clustered: small = 40+500 = 540 > buffer 64 → NINDX + NCARD.
        assert!((nonclustered.cost.pages - 10_040.0).abs() < 1e-9);
    }

    #[test]
    fn index_order_is_key_columns() {
        let cat = demo();
        let (cands, _) = paths_for(&cat, "SELECT NAME FROM EMP");
        let c = index_path(&cands, 2);
        assert_eq!(c.order, vec![ColId::new(0, 2), ColId::new(0, 3)]);
        assert!(cands[0].order.is_empty(), "segment scan is unordered");
    }

    #[test]
    fn subset_rows_multiplies_cards_and_sels() {
        let cat = demo();
        let Statement::Select(stmt) =
            parse_statement("SELECT NAME FROM EMP WHERE DNO = 7 AND SAL > 0").unwrap()
        else {
            panic!()
        };
        let q = bind_select(&cat, &stmt).unwrap();
        let ctx = PlanCtx::new(&cat, &q, OptimizerConfig::default());
        let rows = ctx.subset_rows(TableSet::single(0));
        // 10000 * (1/50) * (1/3 via default range — SAL has no index) …
        let expect = 10_000.0 * (1.0 / 50.0) * (1.0 / 3.0);
        assert!((rows - expect).abs() < 1e-6, "rows={rows}");
    }
}
