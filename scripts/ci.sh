#!/usr/bin/env sh
# CI gate: formatting, lints, docs, release build, the full test suite,
# the persistence round-trip, and the sysr-audit invariant/recovery/lint
# pass (see DESIGN.md §8–§9). Runs offline — zero external crates.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo build --release --workspace --bins --benches --examples
cargo test --workspace
# Save/reopen round-trip against real page files in a temp dir; pins the
# fetches == device-reads identity and clean errors on torn/corrupt files.
cargo test --release --test persistence
# 8-thread stress: plans and rows must be bit-identical to a serial
# baseline, session/cache accounting exact, and save-under-load must
# round-trip. RUST_TEST_THREADS is force-unset so the harness does not
# serialize the scoped worker threads.
env -u RUST_TEST_THREADS cargo test --release --test concurrent_serving
# --all = plan invariants + DP oracle (per query block, nested subquery
# blocks included) & sampled orders + parallel-DP determinism + recovery
# rules (page-checksum, reopen-equivalence) + the concurrent-differential
# rule (corpus replayed from 8 threads, bit-identical plans/rows) + the
# exec-accounting rule (traced corpus replay: per-node I/O sums to the
# whole-query delta, RSI-call/page-fetch sums match component-wise, and
# no scan emits more rows than it charged RSI calls — the identities the
# batched NEXT path must preserve) + the
# token-level source lint (no-unwrap, no-index, unsafe-audit,
# latch-discipline, latch-ordering, latch-scope, cast-soundness with
# interval-powered operand analysis, div-guard, and the
# stale-suppression detector stale-allow; `--lint --explain <rule>`
# prints any rule's rationale) + the cost-property verifier
# (exhaustive-boundary + seeded-sample domain checks that every Table 1
# selectivity and Table 2 cost formula is non-negative, finite, and
# monotone where the paper requires — see DESIGN.md §15) + the
# model engine (bounded schedule exploration of the RSS latches; the
# default budget — preemption bound 2, capped DFS plus 64 seeded deep
# samples per scenario — finishes in seconds and its explored-schedule
# counts are bit-identical across runs). Any unsuppressed finding exits
# nonzero and fails CI.
cargo run --release -p sysr-audit -- --all
# The model checker must have teeth: re-arm the PR-6 dirty-victim/flush
# reordering (a runtime-gated mutant, dead outside the harness) and
# require the explorer to FIND a violating schedule within the bound —
# exit 0 here means the bug was caught and its replay trace printed.
cargo run --release -p sysr-audit -- --model --mutant dirty-victim-gate
# Same teeth-check for the cost-property verifier: plant a non-monotone
# clustered-matching page formula (runtime-gated, dead outside the
# drill) and require the verifier to CATCH it with a replayable
# counterexample — exit 0 means caught, nonzero means the verifier has
# been lobotomized.
cargo run --release -p sysr-audit -- --cost-props --mutant cost-monotone
# Optimizer hot-path bench: the smoke run exercises the measurement
# pipeline end to end (writes BENCH_optimizer.smoke.json, not the
# committed file); --check fails CI when the committed
# BENCH_optimizer.json is missing or malformed.
cargo run --release -p sysr-bench --bin bench_optimizer -- --smoke
cargo run --release -p sysr-bench --bin bench_optimizer -- --check
# Concurrency bench: same smoke/check split for BENCH_concurrency.json
# (qps/p99 for 1, 2, 4, 8 sessions; no speedup assertion — see
# EXPERIMENTS.md on the single-hardware-thread container).
cargo run --release -p sysr-bench --bin bench_concurrency -- --smoke
cargo run --release -p sysr-bench --bin bench_concurrency -- --check
# Executor bench: smoke exercises the batched-RSI measurement pipeline
# (interleaved calibration, writes BENCH_executor.smoke.json); --check
# validates the committed BENCH_executor.json and enforces the
# normalized-speedup gates (per-query floor and geomean — see
# EXPERIMENTS.md for the methodology and the honest 5×-target shortfall).
cargo run --release -p sysr-bench --bin bench_executor -- --smoke
cargo run --release -p sysr-bench --bin bench_executor -- --check
