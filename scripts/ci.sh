#!/usr/bin/env sh
# CI gate: formatting, lints, docs, release build, the full test suite,
# and the sysr-audit invariant/lint pass (see DESIGN.md §8).
# Runs offline — the workspace has zero external crates.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace
cargo build --release --workspace --bins --benches --examples
cargo test --workspace
cargo run --release -p sysr-audit -- --all
