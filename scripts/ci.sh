#!/usr/bin/env sh
# CI gate: formatting, lints, release build, and the full test suite.
# Runs offline — the workspace has zero external crates.
set -eux

cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release --workspace --bins --benches --examples
cargo test --workspace
