//! The model-checker surface, driven from the outside: session
//! statement gating, pool resize under the schedule harness, explored
//! schedule-count determinism, and mutant replay reproducibility.
//!
//! These tests exercise `sysr-audit --model`'s machinery through the
//! public crates (`system_r::audit::model`, `system_r::rss::sync`) the
//! way CI and a debugging developer would: small exploration budgets,
//! bit-identical reruns, and a violating schedule replayed from its
//! printed trace.

mod common;

use common::fig1_db;
use std::sync::Arc;
use system_r::audit::model::{audit_model_with, scenario_named, ModelConfig};
use system_r::rss::sync::model::{execute, Policy};
use system_r::rss::{FileId, MemBackend, PageKey, ShardedBufferPool, SharedBackend, PAGE_SIZE};
use system_r::DbError;

/// A small deterministic budget: the tests below assert behavior, not
/// coverage, so they need seconds of exploration, not CI's full pass.
fn small_budget() -> ModelConfig {
    ModelConfig { bound: 2, dfs_cap: 300, samples: 8, seed: 11 }
}

#[test]
fn sessions_reject_every_non_select_statement() {
    let db = fig1_db(100, 10, 5);
    let session = db.session();
    for sql in [
        "INSERT INTO EMP (NAME, DNO, JOB, SAL) VALUES ('X', 1, 5, 100)",
        "CREATE TABLE T (K INTEGER)",
        "CREATE INDEX EMP_X ON EMP (SAL)",
    ] {
        for result in [
            session.query(sql).map(drop),
            session.plan(sql).map(drop),
            session.explain(sql).map(drop),
            session.explain_analyze(sql).map(drop),
        ] {
            match result {
                Err(DbError::Unsupported(msg)) => {
                    assert!(msg.contains("SELECT"), "gate names the contract: {msg}")
                }
                other => panic!("{sql:?} through a session: expected Unsupported, got {other:?}"),
            }
        }
    }
    // The gate is statement-level, not an accident of planning: the same
    // SELECT text works.
    assert!(session.query("SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME").is_ok());
}

fn seg(page: u32) -> PageKey {
    PageKey::new(FileId::Segment(0), page)
}

fn seeded_backend(pages: u32) -> Arc<SharedBackend> {
    let mut mem = MemBackend::new();
    for p in 0..pages {
        let mut img = [0u8; PAGE_SIZE];
        img[0] = p as u8;
        system_r::rss::pagefile::stamp_page(&mut img, p + 1);
        mem.write_page(seg(p), &img).expect("seed backend");
    }
    Arc::new(SharedBackend::new(Box::new(mem)))
}

use system_r::rss::PageBackend;

/// `resize` takes `&mut self`, so the borrow checker already forbids a
/// true resize/reader race. What the model harness can still check: a
/// resize *phased between* fully-explored concurrent reader schedules
/// preserves residency bounds and page contents, whatever interleaving
/// the readers took.
#[test]
fn resize_between_model_checked_reader_phases_preserves_contents() {
    for forced in [&[][..], &[0, 0, 0, 1, 1, 0][..], &[1, 1, 1, 0, 0, 1][..]] {
        let backend = seeded_backend(6);
        let pool = Arc::new(ShardedBufferPool::new(4));
        let mut bodies: Vec<Box<dyn FnOnce() + Send + 'static>> = Vec::new();
        for t in 0..2u32 {
            let (p, b) = (Arc::clone(&pool), Arc::clone(&backend));
            bodies.push(Box::new(move || {
                for page in [t, t + 2, t + 4] {
                    p.read(seg(page), &b).expect("model read");
                }
            }));
        }
        let run = execute(bodies, forced, Policy::NonPreemptive, None);
        assert!(run.deadlock.is_none() && run.lock_cycle.is_none(), "{}", run.render_schedule());

        // Reader phase done: recover exclusive ownership and resize down
        // and up. The virtual threads are joined, so try_unwrap holds.
        let mut pool = Arc::try_unwrap(pool).expect("virtual threads joined");
        pool.resize(2, &backend).expect("shrink");
        assert!(pool.resident_pages() <= pool.capacity(), "shrink evicted to the new bound");
        pool.resize(8, &backend).expect("grow");
        for page in 0..6u32 {
            pool.read(seg(page), &backend).expect("post-resize read");
        }
        assert!(pool.resident_pages() <= pool.capacity());
    }
}

#[test]
fn explored_schedule_counts_are_bit_identical_across_runs() {
    let first = audit_model_with(None, &[], &small_budget());
    let second = audit_model_with(None, &[], &small_budget());
    assert!(first.report.ok(), "{}", first.report.render());
    assert_eq!(first.report.checks, second.report.checks);
    assert_eq!(first.notes, second.notes, "per-scenario counts are deterministic");
}

/// The printed schedule trace is not documentation — it is an input: the
/// `schedule [...]` line replayed as forced choices reproduces the
/// violation in one execution.
#[test]
fn mutant_schedule_trace_replays_to_the_same_violation() {
    let scenario = scenario_named("dirty-victim-flush").expect("registered scenario");
    let explored =
        system_r::audit::model::explore(&scenario, Some("dirty-victim-gate"), &small_budget());
    let (violation, trace) = explored.finding.expect("mutant must be caught");
    assert_eq!(violation.rule, "model-lost-dirty-image");

    let choices: Vec<usize> = trace
        .lines()
        .next()
        .and_then(|l| l.strip_prefix("schedule ["))
        .and_then(|l| l.strip_suffix("]"))
        .map(|l| l.split(", ").filter_map(|n| n.parse().ok()).collect())
        .expect("trace leads with its schedule line");
    assert!(!choices.is_empty());

    let (bodies, log) = (scenario.build)();
    let run = execute(bodies, &choices, Policy::NonPreemptive, Some("dirty-victim-gate"));
    let replayed = system_r::audit::model::run_violations(scenario.name, &run, &log);
    assert_eq!(
        replayed.first().map(|v| v.rule),
        Some("model-lost-dirty-image"),
        "replaying the printed schedule reproduces the violation: {}",
        run.render_schedule()
    );
    assert_eq!(run.render_schedule(), trace, "replay regenerates the identical trace");
}
