//! End-to-end SQL semantics: parse → bind → optimize → execute, checked
//! against hand-computed expectations over deterministic data.

mod common;

use common::*;
use system_r::rss::Value;
use system_r::{tuple, Database};

fn small_db() -> Database {
    let mut db = Database::new();
    db.execute_script(
        "CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT);
         CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20));
         INSERT INTO EMP VALUES
           ('SMITH', 50, 5, 8000.0),
           ('JONES', 50, 6, 12000.0),
           ('BLAKE', 51, 5, 9000.0),
           ('CLARK', 52, 9, 15000.0),
           ('ADAMS', 52, 5, 7000.0);
         INSERT INTO DEPT VALUES
           (50, 'MFG', 'DENVER'),
           (51, 'SALES', 'TUCSON'),
           (52, 'ADMIN', 'DENVER');
         UPDATE STATISTICS;",
    )
    .unwrap();
    db
}

#[test]
fn simple_filters() {
    let db = small_db();
    let r = db.query("SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME").unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["CLARK", "JONES"]);
    let r = db.query("SELECT NAME FROM EMP WHERE SAL BETWEEN 8000 AND 9000 ORDER BY NAME").unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["BLAKE", "SMITH"]);
    let r =
        db.query("SELECT NAME FROM EMP WHERE DNO IN (51, 52) AND JOB = 5 ORDER BY NAME").unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["ADAMS", "BLAKE"]);
    let r = db.query("SELECT NAME FROM EMP WHERE NOT (SAL >= 9000 OR DNO = 52)").unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["SMITH"]);
}

#[test]
fn projection_and_arithmetic() {
    let db = small_db();
    let r = db.query("SELECT NAME, SAL * 2 + 1 AS DOUBLED FROM EMP WHERE NAME = 'SMITH'").unwrap();
    assert_eq!(r.columns, vec!["NAME", "DOUBLED"]);
    assert_eq!(r.rows[0][1], Value::Float(16001.0));
}

#[test]
fn two_way_join_matches_hand_result() {
    let db = small_db();
    let r = db
        .query(
            "SELECT NAME, DNAME FROM EMP, DEPT
             WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME",
        )
        .unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["ADAMS", "CLARK", "JONES", "SMITH"]);
    assert_eq!(str_column(&r.rows, 1), vec!["ADMIN", "ADMIN", "MFG", "MFG"]);
}

#[test]
fn join_order_in_from_list_is_irrelevant() {
    let db = small_db();
    let a = db
        .query("SELECT NAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC='DENVER' ORDER BY NAME")
        .unwrap();
    let b = db
        .query("SELECT NAME FROM DEPT, EMP WHERE EMP.DNO = DEPT.DNO AND LOC='DENVER' ORDER BY NAME")
        .unwrap();
    assert_eq!(a.rows, b.rows);
}

#[test]
fn self_join_with_aliases() {
    let db = small_db();
    // Colleagues in the same department, alphabetically ordered pairs.
    let r = db
        .query(
            "SELECT A.NAME, B.NAME FROM EMP A, EMP B
             WHERE A.DNO = B.DNO AND A.NAME < B.NAME ORDER BY A.NAME",
        )
        .unwrap();
    let pairs: Vec<(String, String)> = r
        .rows
        .iter()
        .map(|t| (t[0].as_str().unwrap().into(), t[1].as_str().unwrap().into()))
        .collect();
    assert_eq!(
        pairs,
        vec![
            ("ADAMS".to_string(), "CLARK".to_string()),
            ("JONES".to_string(), "SMITH".to_string()),
        ]
    );
}

#[test]
fn aggregates_without_group_by() {
    let db = small_db();
    let r = db.query("SELECT COUNT(*), SUM(SAL), MIN(SAL), MAX(SAL), AVG(SAL) FROM EMP").unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::Int(5));
    assert_eq!(row[1], Value::Float(51_000.0));
    assert_eq!(row[2], Value::Float(7000.0));
    assert_eq!(row[3], Value::Float(15_000.0));
    assert_eq!(row[4], Value::Float(10_200.0));
}

#[test]
fn aggregates_on_empty_input() {
    let db = small_db();
    let r = db.query("SELECT COUNT(*), SUM(SAL) FROM EMP WHERE SAL > 1000000").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[0][1], Value::Null);
    // With GROUP BY: zero groups.
    let r = db.query("SELECT DNO, COUNT(*) FROM EMP WHERE SAL > 1000000 GROUP BY DNO").unwrap();
    assert!(r.rows.is_empty());
}

#[test]
fn group_by_with_order() {
    let db = small_db();
    let r = db.query("SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO ORDER BY DNO").unwrap();
    assert_eq!(int_column(&r.rows, 0), vec![50, 51, 52]);
    assert_eq!(int_column(&r.rows, 1), vec![2, 1, 2]);
    assert_eq!(float_column(&r.rows, 2), vec![10_000.0, 9000.0, 11_000.0]);
}

#[test]
fn group_by_on_join_result() {
    let db = small_db();
    let r = db
        .query(
            "SELECT LOC, COUNT(*) FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO
             GROUP BY LOC ORDER BY LOC",
        )
        .unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["DENVER", "TUCSON"]);
    assert_eq!(int_column(&r.rows, 1), vec![4, 1]);
}

#[test]
fn distinct_dedups() {
    let db = small_db();
    let r = db.query("SELECT DISTINCT JOB FROM EMP ORDER BY JOB").unwrap();
    assert_eq!(int_column(&r.rows, 0), vec![5, 6, 9]);
}

#[test]
fn order_by_desc_and_multi_key() {
    let db = small_db();
    let r = db.query("SELECT NAME, DNO FROM EMP ORDER BY DNO DESC, NAME ASC").unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["ADAMS", "CLARK", "BLAKE", "JONES", "SMITH"]);
}

#[test]
fn nulls_filtered_by_comparisons() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)").unwrap();
    db.insert_rows("T", vec![tuple![1, 10], Value::Null.into_tuple_with(2), tuple![3, 30]])
        .unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    // Comparisons with NULL are never satisfied, in either polarity.
    let r = db.query("SELECT A FROM T WHERE B > 0").unwrap();
    assert_eq!(r.len(), 2);
    let r = db.query("SELECT A FROM T WHERE NOT B > 0").unwrap();
    assert_eq!(r.len(), 0);
    // Aggregates skip NULLs; COUNT(*) does not.
    let r = db.query("SELECT COUNT(*), COUNT(B), SUM(B) FROM T").unwrap();
    assert_eq!(r.rows[0].values(), &[Value::Int(3), Value::Int(2), Value::Int(40)]);
}

trait IntoTupleWith {
    fn into_tuple_with(self, a: i64) -> system_r::rss::Tuple;
}
impl IntoTupleWith for Value {
    fn into_tuple_with(self, a: i64) -> system_r::rss::Tuple {
        system_r::rss::Tuple::new(vec![Value::Int(a), self])
    }
}

#[test]
fn update_with_self_referencing_assignment() {
    let mut db = small_db();
    // 10% raise for Denver employees; assignments read the OLD row.
    let r = db
        .execute(
            "UPDATE EMP SET SAL = SAL * 2, JOB = JOB + 1
             WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(4));
    let r = db.query("SELECT NAME, SAL, JOB FROM EMP ORDER BY NAME").unwrap();
    let by_name: Vec<(String, f64, i64)> = r
        .rows
        .iter()
        .map(|t| {
            (
                t[0].as_str().unwrap().to_string(),
                float_column(std::slice::from_ref(t), 1)[0],
                t[2].as_int().unwrap(),
            )
        })
        .collect();
    assert_eq!(by_name[0], ("ADAMS".into(), 14_000.0, 6)); // Denver: doubled
    assert_eq!(by_name[1], ("BLAKE".into(), 9_000.0, 5)); // Tucson: unchanged
    assert_eq!(by_name[4], ("SMITH".into(), 16_000.0, 6)); // Denver: doubled
}

#[test]
fn update_without_where_touches_all_rows() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER)").unwrap();
    db.execute("INSERT INTO T VALUES (1), (2), (3)").unwrap();
    let r = db.execute("UPDATE T SET A = A + 100").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    let r = db.query("SELECT A FROM T ORDER BY A").unwrap();
    assert_eq!(common::int_column(&r.rows, 0), vec![101, 102, 103]);
}

#[test]
fn update_maintains_indexes() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER)").unwrap();
    db.insert_rows("T", (0..200).map(|i| tuple![i, i % 10])).unwrap();
    db.execute("CREATE UNIQUE INDEX T_A ON T (A)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    db.execute("UPDATE T SET A = A + 1000 WHERE B = 3").unwrap();
    // Index probes must see the new keys and miss the old ones.
    let r = db.query("SELECT B FROM T WHERE A = 1003").unwrap();
    assert_eq!(r.len(), 1);
    let r = db.query("SELECT B FROM T WHERE A = 3").unwrap();
    assert_eq!(r.len(), 0);
    // Unique index still intact overall.
    let r = db.query("SELECT COUNT(*) FROM T").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(200));
}

#[test]
fn update_unknown_column_errors() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER)").unwrap();
    assert!(db.execute("UPDATE T SET NOPE = 1").is_err());
}

#[test]
fn scalar_subquery_from_paper() {
    let db = employee_db(100, 10);
    // Everyone above the average salary.
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE
             WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
        )
        .unwrap();
    let all = db.query("SELECT SALARY FROM EMPLOYEE").unwrap();
    let sals = float_column(&all.rows, 0);
    let avg = sals.iter().sum::<f64>() / sals.len() as f64;
    let expect = sals.iter().filter(|&&s| s > avg).count();
    assert_eq!(r.len(), expect);
    assert!(!r.is_empty() && r.len() < 100);
}

#[test]
fn in_subquery_from_paper() {
    let db = employee_db(100, 10);
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER IN
               (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
        )
        .unwrap();
    // Departments 0..3 are in Denver; employees are spread i % 10.
    assert_eq!(r.len(), 30);
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER NOT IN
               (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
        )
        .unwrap();
    assert_eq!(r.len(), 70);
}

#[test]
fn correlated_subquery_earn_more_than_manager() {
    let db = employee_db(50, 5);
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
        )
        .unwrap();
    // Verify against direct computation.
    let all = db
        .query(
            "SELECT NAME, SALARY, EMPLOYEE_NUMBER, MANAGER FROM EMPLOYEE ORDER BY EMPLOYEE_NUMBER",
        )
        .unwrap();
    let sal_of: Vec<f64> = float_column(&all.rows, 1);
    let expect: Vec<String> = all
        .rows
        .iter()
        .filter(|t| {
            let sal = match &t[1] {
                Value::Float(x) => *x,
                _ => unreachable!(),
            };
            let mgr = t[3].as_int().unwrap() as usize;
            sal > sal_of[mgr]
        })
        .map(|t| t[0].as_str().unwrap().to_string())
        .collect();
    let mut got = str_column(&r.rows, 0);
    let mut expect_sorted = expect.clone();
    got.sort();
    expect_sorted.sort();
    assert_eq!(got, expect_sorted);
    assert!(!got.is_empty());
}

#[test]
fn three_level_nesting_from_paper() {
    let db = employee_db(60, 4);
    // Earn more than their manager's manager.
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
                 (SELECT MANAGER FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER))",
        )
        .unwrap();
    let all = db.query("SELECT SALARY, MANAGER FROM EMPLOYEE ORDER BY EMPLOYEE_NUMBER").unwrap();
    let sal: Vec<f64> = float_column(&all.rows, 0);
    let mgr: Vec<i64> = int_column(&all.rows, 1);
    let expect =
        (0..60).filter(|&i| sal[i as usize] > sal[mgr[mgr[i as usize] as usize] as usize]).count();
    assert_eq!(r.len(), expect);
}

#[test]
fn subquery_as_probe_value_uses_index() {
    let db = employee_db(500, 10);
    // The scalar subquery's value probes the unique EMPLOYEE_NUMBER index.
    let r = db
        .query(
            "SELECT NAME FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
               (SELECT MAX(DEPARTMENT_NUMBER) FROM DEPARTMENT)",
        )
        .unwrap();
    assert_eq!(str_column(&r.rows, 0), vec!["E0009"]);
    let plan = db
        .plan(
            "SELECT NAME FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
               (SELECT MAX(DEPARTMENT_NUMBER) FROM DEPARTMENT)",
        )
        .unwrap();
    let text = plan.explain(db.catalog());
    assert!(text.contains("INDEX SCAN"), "{text}");
    assert!(text.contains("subquery#0"), "{text}");
}

#[test]
fn scalar_subquery_multiple_rows_errors() {
    let db = employee_db(20, 5);
    let err = db
        .query("SELECT NAME FROM EMPLOYEE WHERE SALARY = (SELECT SALARY FROM EMPLOYEE)")
        .unwrap_err();
    assert!(format!("{err}").contains("single value"), "{err}");
}

#[test]
fn fig1_query_full_pipeline() {
    let db = fig1_db(2000, 40, 10);
    let r = db
        .query(
            "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
             WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
               AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB",
        )
        .unwrap();
    // Independent verification via three separate queries.
    let clerks = db.query("SELECT JOB FROM JOB WHERE TITLE = 'CLERK'").unwrap();
    let clerk_jobs: Vec<i64> = int_column(&clerks.rows, 0);
    let denver = db.query("SELECT DNO FROM DEPT WHERE LOC = 'DENVER'").unwrap();
    let denver_dnos: Vec<i64> = int_column(&denver.rows, 0);
    let emps = db.query("SELECT DNO, JOB FROM EMP").unwrap();
    let expect = emps
        .rows
        .iter()
        .filter(|t| {
            denver_dnos.contains(&t[0].as_int().unwrap())
                && clerk_jobs.contains(&t[1].as_int().unwrap())
        })
        .count();
    assert_eq!(r.len(), expect);
    assert!(!r.is_empty(), "workload must produce clerk rows in Denver");
}

#[test]
fn all_enumerated_plans_agree_on_fig1(/* plan-independence of results */) {
    use system_r::core::{bind_select, Enumerator};
    use system_r::sql::{parse_statement, Statement};

    let db = fig1_db(600, 20, 10);
    let sql = "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
               WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
                 AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";
    let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
    let bound = bind_select(db.catalog(), &stmt).unwrap();
    let config = system_r::Config { defer_cartesian: false, ..system_r::Config::default() };
    let enumerator = Enumerator::new(db.catalog(), &bound, config);
    let plans = enumerator.all_plans(500);
    assert!(plans.len() >= 10, "expected many alternative plans, got {}", plans.len());

    let reference = db.query(sql).unwrap();
    let mut reference_rows = reference.rows.clone();
    reference_rows.sort();
    for plan_expr in plans {
        let full = system_r::core::QueryPlan {
            query: bound.clone(),
            root: plan_expr,
            subplans: vec![],
            block_filters: vec![],
            predicted: system_r::core::Cost::ZERO,
            qcard: 0.0,
            stats: Default::default(),
        };
        let mut rows = db.execute_plan(&full).unwrap().rows;
        rows.sort();
        assert_eq!(rows, reference_rows, "every plan must produce the same result");
    }
}
