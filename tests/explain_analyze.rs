//! `EXPLAIN ANALYZE` and optimizer search-trace behavior: the executor's
//! per-node measurements must account for every page fetch and RSI call
//! the query performed, and the enumerator's trace must account for every
//! candidate plan it generated.

mod common;

use common::{employee_db, fig1_db};
use system_r::core::{Optimizer, PlanExpr, PlanNode};
use system_r::sql::{parse_statement, Statement};
use system_r::Database;

const FIG1_JOIN: &str = "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
    WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
      AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

/// Queries covering every operator: segment scan, index scan, nested
/// loops, merging scans with sort, uncorrelated and correlated subqueries.
fn coverage_queries() -> Vec<&'static str> {
    vec![
        "SELECT NAME FROM EMP",
        "SELECT NAME FROM EMP WHERE DNO = 3",
        "SELECT NAME FROM EMP ORDER BY DNO",
        FIG1_JOIN,
        "SELECT EMP.NAME, DEPT.DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO",
        "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO",
    ]
}

/// Walk a plan tree with the pre-order id arithmetic, collecting
/// `(id, node)` pairs.
fn collect_nodes<'a>(plan: &'a PlanExpr, id: usize, out: &mut Vec<(usize, &'a PlanExpr)>) {
    out.push((id, plan));
    match &plan.node {
        PlanNode::Scan(_) => {}
        PlanNode::NestedLoop { outer, inner } | PlanNode::Merge { outer, inner, .. } => {
            collect_nodes(outer, plan.outer_child_id(id).unwrap(), out);
            collect_nodes(inner, plan.inner_child_id(id).unwrap(), out);
        }
        PlanNode::Sort { input, .. } => {
            collect_nodes(input, plan.outer_child_id(id).unwrap(), out);
        }
    }
}

#[test]
fn per_node_io_sums_to_whole_query_delta() {
    let db = fig1_db(2000, 50, 5);
    for sql in coverage_queries() {
        let plan = db.plan(sql).unwrap();
        let (_, measurements, delta) = db.execute_plan_traced(&plan).unwrap();
        let mut sum = system_r::rss::IoStats::default();
        for m in measurements.values() {
            sum += m.io;
        }
        assert_eq!(sum, delta, "per-node I/O must partition the delta: {sql}");
        assert!(delta.rsi_calls > 0, "query should have touched tuples: {sql}");
    }
}

#[test]
fn per_node_io_sums_to_delta_with_subqueries() {
    let db = employee_db(500, 7);
    for sql in [
        "SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
           (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
        "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER IN
           (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
    ] {
        let plan = db.plan(sql).unwrap();
        let (_, measurements, delta) = db.execute_plan_traced(&plan).unwrap();
        let mut sum = system_r::rss::IoStats::default();
        for m in measurements.values() {
            sum += m.io;
        }
        assert_eq!(sum, delta, "subquery I/O must land on subquery node ids: {sql}");
        // The subquery block's nodes occupy ids past the root tree and
        // must have been measured.
        let base = plan.subplan_base(0, 0);
        assert_eq!(base, plan.root.node_count());
        assert!(
            measurements.keys().any(|&id| id >= base),
            "no measurement on subquery nodes: {sql}"
        );
    }
}

#[test]
fn row_counts_internally_consistent() {
    let db = fig1_db(2000, 50, 5);
    for sql in coverage_queries() {
        let plan = db.plan(sql).unwrap();
        let (result, measurements, _) = db.execute_plan_traced(&plan).unwrap();
        let mut nodes = Vec::new();
        collect_nodes(&plan.root, 0, &mut nodes);
        for (id, p) in &nodes {
            let m = measurements.get(id).copied().unwrap_or_default();
            match &p.node {
                PlanNode::NestedLoop { inner, .. } => {
                    // The inner scan opens once per outer row.
                    let outer_id = p.outer_child_id(*id).unwrap();
                    let inner_id = p.inner_child_id(*id).unwrap();
                    let outer_m = measurements[&outer_id];
                    let inner_m = measurements.get(&inner_id).copied().unwrap_or_default();
                    assert_eq!(
                        inner_m.invocations, outer_m.rows,
                        "NL inner loops == outer rows: {sql}"
                    );
                    let _ = inner;
                }
                PlanNode::Sort { .. } => {
                    // Sort reorders, never filters.
                    let input_m = measurements[&p.outer_child_id(*id).unwrap()];
                    assert_eq!(m.rows, input_m.rows, "sort preserves rows: {sql}");
                }
                _ => {}
            }
        }
        // A non-aggregated block without DISTINCT emits the root's rows.
        if !plan.query.aggregated && !plan.query.distinct {
            assert_eq!(
                measurements[&0].rows as usize,
                result.rows.len(),
                "root rows must match the result: {sql}"
            );
        }
    }
}

#[test]
fn traced_execution_matches_untraced_results() {
    let db = fig1_db(1000, 20, 5);
    for sql in coverage_queries() {
        let plan = db.plan(sql).unwrap();
        let plain = db.execute_plan(&plan).unwrap();
        let (traced, _, _) = db.execute_plan_traced(&plan).unwrap();
        assert_eq!(plain.rows, traced.rows, "tracing must not change results: {sql}");
    }
}

#[test]
fn explain_analyze_renders_fig1_join() {
    let db = fig1_db(2000, 50, 5);
    let text = db.explain_analyze(FIG1_JOIN).unwrap();
    assert!(text.contains("#0 "), "{text}");
    assert!(text.contains("NESTED LOOP JOIN") || text.contains("MERGE JOIN"), "{text}");
    assert!(text.contains("actual rows="), "{text}");
    assert!(text.contains("predicted:"), "{text}");
    assert!(text.contains("measured:"), "{text}");
    // All three relations appear as scans.
    for t in ["EMP", "DEPT", "JOB"] {
        assert!(text.contains(&format!("SCAN {t}")), "missing {t} scan:\n{text}");
    }
}

#[test]
fn explain_analyze_single_table_shapes() {
    let db = fig1_db(2000, 50, 5);
    // Segment scan: no usable predicate.
    let text = db.explain_analyze("SELECT NAME FROM EMP").unwrap();
    assert!(text.contains("SEGMENT SCAN EMP"), "{text}");
    // Matching index scan: equal predicate on the indexed column.
    let text = db.explain_analyze("SELECT NAME FROM EMP WHERE DNO = 3").unwrap();
    assert!(text.contains("INDEX SCAN EMP via EMP_DNO"), "{text}");
    assert!(text.contains("loops=1"), "{text}");
}

#[test]
fn explain_analyze_correlated_subquery_reports_loops() {
    let db = employee_db(500, 7);
    let text = db
        .explain_analyze(
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
        )
        .unwrap();
    assert!(text.contains("subquery #0 (correlated scalar)"), "{text}");
    // Memoization caps evaluations at the number of distinct managers
    // (500/7 → 72 distinct values), but it must run more than once.
    let sub_line = text.lines().find(|l| l.contains("#1 ")).expect("subquery node line");
    let loops: u64 = sub_line
        .split("loops=")
        .nth(1)
        .and_then(|s| s.split_whitespace().next())
        .and_then(|s| s.parse().ok())
        .expect("loops count");
    assert!(loops > 1, "correlated subquery must re-evaluate: {sub_line}");
    assert!(loops <= 72, "memoization must cap re-evaluation: {sub_line}");
}

/// Pull `temp={fetched}+{written}w` off a rendered node line.
fn temp_io(line: &str) -> (u64, u64) {
    let tail = line.split("temp=").nth(1).expect("temp field");
    let (fetched, rest) = tail.split_once('+').expect("temp format");
    let written = rest.split('w').next().expect("temp format");
    (fetched.parse().unwrap(), written.parse().unwrap())
}

#[test]
fn explain_analyze_partial_sort_golden() {
    // EMP clustered on DNO: the DNO index scan produces the (DNO) prefix
    // of ORDER BY DNO, SAL, so the optimizer plans a partial sort whose
    // runs (≈80 rows each) all fit in memory — zero temp I/O. The
    // reversed key order gets no prefix and pays a full external sort.
    let db = common::fig1_clustered_db(4000, 50, 5);

    let prefix = db.explain_analyze("SELECT NAME FROM EMP ORDER BY DNO, SAL").unwrap();
    let sort_line = prefix.lines().find(|l| l.contains("SORT")).expect("sort node");
    assert!(sort_line.contains("SORT (prefix=1)"), "partial sort not planned:\n{prefix}");
    assert_eq!(temp_io(sort_line), (0, 0), "in-memory runs must not spill:\n{prefix}");

    let full = db.explain_analyze("SELECT NAME FROM EMP ORDER BY SAL, DNO").unwrap();
    let sort_line = full.lines().find(|l| l.contains("SORT")).expect("sort node");
    assert!(!sort_line.contains("prefix="), "no prefix exists for (SAL, DNO):\n{full}");
    let (fetched, written) = temp_io(sort_line);
    assert!(written > 0 && fetched == written, "full sort must spill and read back:\n{full}");
}

#[test]
fn explain_analyze_statement_flows_through_sql() {
    let mut db = fig1_db(1000, 20, 5);
    let r = db.execute("EXPLAIN ANALYZE SELECT NAME FROM EMP WHERE DNO = 3").unwrap();
    assert_eq!(r.columns, vec!["PLAN".to_string()]);
    let text = r.rows[0][0].as_str().unwrap();
    assert!(text.contains("actual rows="), "{text}");
    // Plain EXPLAIN still works and does not execute.
    let r = db.execute("EXPLAIN SELECT NAME FROM EMP WHERE DNO = 3").unwrap();
    assert!(!r.rows[0][0].as_str().unwrap().contains("actual"), "EXPLAIN must not measure");
}

// ---- search trace ----------------------------------------------------------

fn traces_for(db: &Database, sql: &str) -> Vec<(String, system_r::core::SearchTrace)> {
    let Statement::Select(sel) = parse_statement(sql).unwrap() else { panic!() };
    let optimizer = Optimizer::with_config(db.catalog(), db.config());
    let (_, traces) = optimizer.optimize_traced(&sel).unwrap();
    traces
}

#[test]
fn search_trace_accounts_for_every_candidate() {
    let db = fig1_db(2000, 50, 5);
    for sql in coverage_queries() {
        for (label, trace) in traces_for(&db, sql) {
            assert_eq!(
                trace.generated(),
                trace.stats.plans_considered,
                "{sql} block {label}: generated must equal plans_considered"
            );
            assert_eq!(
                trace.pruned() + trace.surviving(),
                trace.stats.plans_considered,
                "{sql} block {label}: pruned + surviving must equal considered"
            );
        }
    }
}

#[test]
fn search_trace_levels_cover_the_join() {
    let db = fig1_db(2000, 50, 5);
    let traces = traces_for(&db, FIG1_JOIN);
    assert_eq!(traces.len(), 1);
    let trace = &traces[0].1;
    // Three singles and the full set are always present; pairs may be
    // stranded by the Cartesian-deferral heuristic but at least the two
    // connected ones appear.
    assert_eq!(trace.subsets.iter().filter(|s| s.level == 1).count(), 3);
    assert!(trace.subsets.iter().filter(|s| s.level == 2).count() >= 2);
    assert_eq!(trace.subsets.iter().filter(|s| s.level == 3).count(), 1);
    assert!(trace.stats.heuristic_skips > 0);
    let rendered = trace.render();
    assert!(rendered.contains("level 3"), "{rendered}");
    assert!(rendered.contains("{EMP, DEPT, JOB}"), "{rendered}");
    assert!(rendered.contains("\u{22c8}"), "shapes must show join structure: {rendered}");
}

#[test]
fn search_trace_covers_subquery_blocks() {
    let db = employee_db(500, 7);
    let traces = traces_for(
        &db,
        "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
           (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)",
    );
    assert_eq!(traces.len(), 2);
    assert_eq!(traces[0].0, "root");
    assert_eq!(traces[1].0, "subquery #0");
    for (label, trace) in &traces {
        assert_eq!(
            trace.pruned() + trace.surviving(),
            trace.stats.plans_considered,
            "block {label}"
        );
    }
}

#[test]
fn facade_search_trace_renders_all_blocks() {
    let db = employee_db(500, 7);
    let text = db
        .search_trace("SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)")
        .unwrap();
    assert!(text.contains("== block root =="), "{text}");
    assert!(text.contains("== block subquery #0 =="), "{text}");
    assert!(text.contains("candidates generated"), "{text}");
}
