//! Property tests: for random data, random physical designs, and random
//! predicate trees, the full pipeline (parse → bind → optimize → execute)
//! must agree with a naive in-memory reference evaluator — whatever plan
//! the optimizer picks.

mod common;

use proptest::prelude::*;
use system_r::rss::{Tuple, Value};
use system_r::{tuple, Database};

/// A predicate over columns A (int), B (int) of table T, mirrored as SQL
/// text and as a Rust closure with SQL-ish NULL semantics (any comparison
/// involving NULL is false).
#[derive(Debug, Clone)]
enum Pred {
    CmpA(&'static str, i64),
    CmpB(&'static str, i64),
    BetweenA(i64, i64),
    InB(Vec<i64>),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn sql(&self) -> String {
        match self {
            Pred::CmpA(op, v) => format!("A {op} {v}"),
            Pred::CmpB(op, v) => format!("B {op} {v}"),
            Pred::BetweenA(lo, hi) => format!("A BETWEEN {lo} AND {hi}"),
            Pred::InB(list) => format!(
                "B IN ({})",
                list.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            Pred::And(a, b) => format!("({} AND {})", a.sql(), b.sql()),
            Pred::Or(a, b) => format!("({} OR {})", a.sql(), b.sql()),
            Pred::Not(inner) => format!("NOT ({})", inner.sql()),
        }
    }

    /// SQL three-valued logic: `None` is UNKNOWN (any comparison with
    /// NULL); a row qualifies iff the predicate is `Some(true)`.
    fn eval3(&self, a: Option<i64>, b: Option<i64>) -> Option<bool> {
        fn cmp(op: &str, l: Option<i64>, r: i64) -> Option<bool> {
            let l = l?;
            Some(match op {
                "=" => l == r,
                "<>" => l != r,
                "<" => l < r,
                "<=" => l <= r,
                ">" => l > r,
                ">=" => l >= r,
                _ => unreachable!(),
            })
        }
        match self {
            Pred::CmpA(op, v) => cmp(op, a, *v),
            Pred::CmpB(op, v) => cmp(op, b, *v),
            Pred::BetweenA(lo, hi) => a.map(|x| x >= *lo && x <= *hi),
            Pred::InB(list) => b.map(|x| list.contains(&x)),
            Pred::And(p, q) => match (p.eval3(a, b), q.eval3(a, b)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Pred::Or(p, q) => match (p.eval3(a, b), q.eval3(a, b)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Pred::Not(inner) => inner.eval3(a, b).map(|x| !x),
        }
    }

    fn eval(&self, a: Option<i64>, b: Option<i64>) -> bool {
        self.eval3(a, b) == Some(true)
    }
}

fn arb_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("="),
        Just("<>"),
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
    ]
}

fn arb_pred() -> impl Strategy<Value = Pred> {
    let leaf = prop_oneof![
        (arb_op(), 0i64..20).prop_map(|(op, v)| Pred::CmpA(op, v)),
        (arb_op(), 0i64..8).prop_map(|(op, v)| Pred::CmpB(op, v)),
        (0i64..20, 0i64..20).prop_map(|(x, y)| Pred::BetweenA(x.min(y), x.max(y))),
        prop::collection::vec(0i64..8, 1..4).prop_map(Pred::InB),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Pred::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Pred::Or(Box::new(a), Box::new(b))),
            inner.prop_map(|a| Pred::Not(Box::new(a))),
        ]
    })
}

/// Row generator: (A, B) with occasional NULLs in B.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, Option<i64>)>> {
    prop::collection::vec((0i64..20, prop::option::weighted(0.9, 0i64..8)), 0..80)
}

#[derive(Debug, Clone, Copy)]
enum Design {
    NoIndex,
    IndexA,
    IndexB,
    ClusteredA,
    Both,
}

fn arb_design() -> impl Strategy<Value = Design> {
    prop_oneof![
        Just(Design::NoIndex),
        Just(Design::IndexA),
        Just(Design::IndexB),
        Just(Design::ClusteredA),
        Just(Design::Both),
    ]
}

fn build_db(rows: &[(i64, Option<i64>)], design: Design) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER, PAD VARCHAR(12))").unwrap();
    db.insert_rows(
        "T",
        rows.iter().enumerate().map(|(i, (a, b))| {
            Tuple::new(vec![
                Value::Int(*a),
                b.map(Value::Int).unwrap_or(Value::Null),
                Value::Str(format!("p{i:08}")),
            ])
        }),
    )
    .unwrap();
    match design {
        Design::NoIndex => {}
        Design::IndexA => {
            db.execute("CREATE INDEX T_A ON T (A)").unwrap();
        }
        Design::IndexB => {
            db.execute("CREATE INDEX T_B ON T (B)").unwrap();
        }
        Design::ClusteredA => {
            db.execute("CREATE CLUSTERED INDEX T_A ON T (A)").unwrap();
        }
        Design::Both => {
            db.execute("CREATE INDEX T_A ON T (A)").unwrap();
            db.execute("CREATE INDEX T_B ON T (B)").unwrap();
        }
    }
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Single-table filters agree with the reference under every physical
    /// design (the chosen access path must not change results).
    #[test]
    fn prop_filter_matches_reference(
        rows in arb_rows(),
        pred in arb_pred(),
        design in arb_design(),
    ) {
        let db = build_db(&rows, design);
        let sql = format!("SELECT A FROM T WHERE {} ORDER BY A", pred.sql());
        let got: Vec<i64> = db
            .query(&sql)
            .unwrap()
            .rows
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        let mut expect: Vec<i64> = rows
            .iter()
            .filter(|(a, b)| pred.eval(Some(*a), *b))
            .map(|(a, _)| *a)
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect, "query: {}", sql);
    }

    /// Aggregates over random filters agree with the reference.
    #[test]
    fn prop_aggregates_match_reference(
        rows in arb_rows(),
        pred in arb_pred(),
    ) {
        let db = build_db(&rows, Design::IndexA);
        let sql = format!(
            "SELECT COUNT(*), COUNT(B), MIN(A), MAX(A) FROM T WHERE {}",
            pred.sql()
        );
        let r = db.query(&sql).unwrap();
        let kept: Vec<&(i64, Option<i64>)> =
            rows.iter().filter(|(a, b)| pred.eval(Some(*a), *b)).collect();
        let row = &r.rows[0];
        prop_assert_eq!(row[0].as_int().unwrap(), kept.len() as i64);
        prop_assert_eq!(
            row[1].as_int().unwrap(),
            kept.iter().filter(|(_, b)| b.is_some()).count() as i64
        );
        let min = kept.iter().map(|(a, _)| *a).min();
        let max = kept.iter().map(|(a, _)| *a).max();
        prop_assert_eq!(row[2].as_int(), min);
        prop_assert_eq!(row[3].as_int(), max);
    }

    /// Two-table equi-joins agree with the nested-loop reference whatever
    /// method and order the optimizer picks.
    #[test]
    fn prop_join_matches_reference(
        left in prop::collection::vec((0i64..12, 0i64..5), 0..50),
        right in prop::collection::vec(0i64..12, 0..50),
        tag in 0i64..5,
        index_right in any::<bool>(),
    ) {
        let mut db = Database::new();
        db.execute("CREATE TABLE L (K INTEGER, TAG INTEGER)").unwrap();
        db.execute("CREATE TABLE R (K INTEGER)").unwrap();
        db.insert_rows("L", left.iter().map(|(k, t)| tuple![*k, *t])).unwrap();
        db.insert_rows("R", right.iter().map(|k| tuple![*k])).unwrap();
        if index_right {
            db.execute("CREATE INDEX R_K ON R (K)").unwrap();
        }
        db.execute("UPDATE STATISTICS").unwrap();
        let sql = format!(
            "SELECT L.K FROM L, R WHERE L.K = R.K AND L.TAG = {tag} ORDER BY L.K"
        );
        let got: Vec<i64> = db
            .query(&sql)
            .unwrap()
            .rows
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        let mut expect = Vec::new();
        for (k, t) in &left {
            if *t != tag {
                continue;
            }
            for rk in &right {
                if rk == k {
                    expect.push(*k);
                }
            }
        }
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// DISTINCT and GROUP BY agree.
    #[test]
    fn prop_distinct_and_group_by(rows in arb_rows()) {
        let db = build_db(&rows, Design::ClusteredA);
        let distinct: Vec<i64> = db
            .query("SELECT DISTINCT A FROM T ORDER BY A")
            .unwrap()
            .rows
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(&distinct, &expect);

        let grouped = db.query("SELECT A, COUNT(*) FROM T GROUP BY A ORDER BY A").unwrap();
        prop_assert_eq!(grouped.rows.len(), expect.len());
        for row in &grouped.rows {
            let a = row[0].as_int().unwrap();
            let n = row[1].as_int().unwrap();
            let actual = rows.iter().filter(|(x, _)| *x == a).count() as i64;
            prop_assert_eq!(n, actual);
        }
    }

    /// DELETE removes exactly the matching rows.
    #[test]
    fn prop_delete_matches_reference(rows in arb_rows(), pred in arb_pred()) {
        let mut db = build_db(&rows, Design::IndexA);
        let deleted = db
            .execute(&format!("DELETE FROM T WHERE {}", pred.sql()))
            .unwrap();
        let expect_deleted =
            rows.iter().filter(|(a, b)| pred.eval(Some(*a), *b)).count() as i64;
        prop_assert_eq!(deleted.rows[0][0].as_int().unwrap(), expect_deleted);
        let remaining = db.query("SELECT COUNT(*) FROM T").unwrap();
        prop_assert_eq!(
            remaining.rows[0][0].as_int().unwrap(),
            rows.len() as i64 - expect_deleted
        );
    }
}
