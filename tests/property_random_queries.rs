//! Property tests: for random data, random physical designs, and random
//! predicate trees, the full pipeline (parse → bind → optimize → execute)
//! must agree with a naive in-memory reference evaluator — whatever plan
//! the optimizer picks.

mod common;

use system_r::rss::{SplitMix64, Tuple, Value};
use system_r::{tuple, Database};

/// A predicate over columns A (int), B (int) of table T, mirrored as SQL
/// text and as a Rust closure with SQL-ish NULL semantics (any comparison
/// involving NULL is false).
#[derive(Debug, Clone)]
enum Pred {
    CmpA(&'static str, i64),
    CmpB(&'static str, i64),
    BetweenA(i64, i64),
    InB(Vec<i64>),
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

impl Pred {
    fn sql(&self) -> String {
        match self {
            Pred::CmpA(op, v) => format!("A {op} {v}"),
            Pred::CmpB(op, v) => format!("B {op} {v}"),
            Pred::BetweenA(lo, hi) => format!("A BETWEEN {lo} AND {hi}"),
            Pred::InB(list) => format!(
                "B IN ({})",
                list.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
            ),
            Pred::And(a, b) => format!("({} AND {})", a.sql(), b.sql()),
            Pred::Or(a, b) => format!("({} OR {})", a.sql(), b.sql()),
            Pred::Not(inner) => format!("NOT ({})", inner.sql()),
        }
    }

    /// SQL three-valued logic: `None` is UNKNOWN (any comparison with
    /// NULL); a row qualifies iff the predicate is `Some(true)`.
    fn eval3(&self, a: Option<i64>, b: Option<i64>) -> Option<bool> {
        fn cmp(op: &str, l: Option<i64>, r: i64) -> Option<bool> {
            let l = l?;
            Some(match op {
                "=" => l == r,
                "<>" => l != r,
                "<" => l < r,
                "<=" => l <= r,
                ">" => l > r,
                ">=" => l >= r,
                _ => unreachable!(),
            })
        }
        match self {
            Pred::CmpA(op, v) => cmp(op, a, *v),
            Pred::CmpB(op, v) => cmp(op, b, *v),
            Pred::BetweenA(lo, hi) => a.map(|x| x >= *lo && x <= *hi),
            Pred::InB(list) => b.map(|x| list.contains(&x)),
            Pred::And(p, q) => match (p.eval3(a, b), q.eval3(a, b)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Pred::Or(p, q) => match (p.eval3(a, b), q.eval3(a, b)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            Pred::Not(inner) => inner.eval3(a, b).map(|x| !x),
        }
    }

    fn eval(&self, a: Option<i64>, b: Option<i64>) -> bool {
        self.eval3(a, b) == Some(true)
    }
}

const OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

fn arb_leaf(rng: &mut SplitMix64) -> Pred {
    match rng.below(4) {
        0 => {
            let op = *rng.pick(&OPS).unwrap();
            Pred::CmpA(op, rng.range_i64(0, 20))
        }
        1 => {
            let op = *rng.pick(&OPS).unwrap();
            Pred::CmpB(op, rng.range_i64(0, 8))
        }
        2 => {
            let (x, y) = (rng.range_i64(0, 20), rng.range_i64(0, 20));
            Pred::BetweenA(x.min(y), x.max(y))
        }
        _ => {
            let n = 1 + rng.below(3) as usize;
            Pred::InB((0..n).map(|_| rng.range_i64(0, 8)).collect())
        }
    }
}

/// Random predicate tree, AND/OR/NOT over leaves, up to 3 levels deep
/// (mirrors the original `prop_recursive(3, 16, 2, …)` strategy).
fn arb_pred(rng: &mut SplitMix64) -> Pred {
    fn gen(rng: &mut SplitMix64, depth: u32) -> Pred {
        if depth == 0 || rng.below(2) == 0 {
            return arb_leaf(rng);
        }
        match rng.below(3) {
            0 => Pred::And(Box::new(gen(rng, depth - 1)), Box::new(gen(rng, depth - 1))),
            1 => Pred::Or(Box::new(gen(rng, depth - 1)), Box::new(gen(rng, depth - 1))),
            _ => Pred::Not(Box::new(gen(rng, depth - 1))),
        }
    }
    gen(rng, 3)
}

/// Row generator: (A, B) with occasional NULLs in B.
fn arb_rows(rng: &mut SplitMix64) -> Vec<(i64, Option<i64>)> {
    let n = rng.below(80) as usize;
    (0..n)
        .map(|_| {
            let a = rng.range_i64(0, 20);
            let b = if rng.chance(0.9) { Some(rng.range_i64(0, 8)) } else { None };
            (a, b)
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum Design {
    NoIndex,
    IndexA,
    IndexB,
    ClusteredA,
    Both,
}

fn arb_design(rng: &mut SplitMix64) -> Design {
    match rng.below(5) {
        0 => Design::NoIndex,
        1 => Design::IndexA,
        2 => Design::IndexB,
        3 => Design::ClusteredA,
        _ => Design::Both,
    }
}

fn build_db(rows: &[(i64, Option<i64>)], design: Design) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, B INTEGER, PAD VARCHAR(12))").unwrap();
    db.insert_rows(
        "T",
        rows.iter().enumerate().map(|(i, (a, b))| {
            Tuple::new(vec![
                Value::Int(*a),
                b.map(Value::Int).unwrap_or(Value::Null),
                Value::Str(format!("p{i:08}")),
            ])
        }),
    )
    .unwrap();
    match design {
        Design::NoIndex => {}
        Design::IndexA => {
            db.execute("CREATE INDEX T_A ON T (A)").unwrap();
        }
        Design::IndexB => {
            db.execute("CREATE INDEX T_B ON T (B)").unwrap();
        }
        Design::ClusteredA => {
            db.execute("CREATE CLUSTERED INDEX T_A ON T (A)").unwrap();
        }
        Design::Both => {
            db.execute("CREATE INDEX T_A ON T (A)").unwrap();
            db.execute("CREATE INDEX T_B ON T (B)").unwrap();
        }
    }
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

/// Single-table filters agree with the reference under every physical
/// design (the chosen access path must not change results).
#[test]
fn prop_filter_matches_reference() {
    let mut rng = SplitMix64::new(0x9019_0001);
    for case in 0..64u64 {
        let rows = arb_rows(&mut rng);
        let pred = arb_pred(&mut rng);
        let design = arb_design(&mut rng);
        let db = build_db(&rows, design);
        let sql = format!("SELECT A FROM T WHERE {} ORDER BY A", pred.sql());
        let got: Vec<i64> =
            db.query(&sql).unwrap().rows.iter().map(|t| t[0].as_int().unwrap()).collect();
        let mut expect: Vec<i64> =
            rows.iter().filter(|(a, b)| pred.eval(Some(*a), *b)).map(|(a, _)| *a).collect();
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case} ({design:?}) query: {sql}");
    }
}

/// Aggregates over random filters agree with the reference.
#[test]
fn prop_aggregates_match_reference() {
    let mut rng = SplitMix64::new(0x9019_0002);
    for case in 0..64u64 {
        let rows = arb_rows(&mut rng);
        let pred = arb_pred(&mut rng);
        let db = build_db(&rows, Design::IndexA);
        let sql = format!("SELECT COUNT(*), COUNT(B), MIN(A), MAX(A) FROM T WHERE {}", pred.sql());
        let r = db.query(&sql).unwrap();
        let kept: Vec<&(i64, Option<i64>)> =
            rows.iter().filter(|(a, b)| pred.eval(Some(*a), *b)).collect();
        let row = &r.rows[0];
        assert_eq!(row[0].as_int().unwrap(), kept.len() as i64, "case {case}");
        assert_eq!(
            row[1].as_int().unwrap(),
            kept.iter().filter(|(_, b)| b.is_some()).count() as i64,
            "case {case}"
        );
        let min = kept.iter().map(|(a, _)| *a).min();
        let max = kept.iter().map(|(a, _)| *a).max();
        assert_eq!(row[2].as_int(), min, "case {case}");
        assert_eq!(row[3].as_int(), max, "case {case}");
    }
}

/// Two-table equi-joins agree with the nested-loop reference whatever
/// method and order the optimizer picks.
#[test]
fn prop_join_matches_reference() {
    let mut rng = SplitMix64::new(0x9019_0003);
    for case in 0..64u64 {
        let n_left = rng.below(50) as usize;
        let left: Vec<(i64, i64)> =
            (0..n_left).map(|_| (rng.range_i64(0, 12), rng.range_i64(0, 5))).collect();
        let n_right = rng.below(50) as usize;
        let right: Vec<i64> = (0..n_right).map(|_| rng.range_i64(0, 12)).collect();
        let tag = rng.range_i64(0, 5);
        let index_right = rng.bool();

        let mut db = Database::new();
        db.execute("CREATE TABLE L (K INTEGER, TAG INTEGER)").unwrap();
        db.execute("CREATE TABLE R (K INTEGER)").unwrap();
        db.insert_rows("L", left.iter().map(|(k, t)| tuple![*k, *t])).unwrap();
        db.insert_rows("R", right.iter().map(|k| tuple![*k])).unwrap();
        if index_right {
            db.execute("CREATE INDEX R_K ON R (K)").unwrap();
        }
        db.execute("UPDATE STATISTICS").unwrap();
        let sql = format!("SELECT L.K FROM L, R WHERE L.K = R.K AND L.TAG = {tag} ORDER BY L.K");
        let got: Vec<i64> =
            db.query(&sql).unwrap().rows.iter().map(|t| t[0].as_int().unwrap()).collect();
        let mut expect = Vec::new();
        for (k, t) in &left {
            if *t != tag {
                continue;
            }
            for rk in &right {
                if rk == k {
                    expect.push(*k);
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect, "case {case}");
    }
}

/// DISTINCT and GROUP BY agree.
#[test]
fn prop_distinct_and_group_by() {
    let mut rng = SplitMix64::new(0x9019_0004);
    for case in 0..64u64 {
        let rows = arb_rows(&mut rng);
        let db = build_db(&rows, Design::ClusteredA);
        let distinct: Vec<i64> = db
            .query("SELECT DISTINCT A FROM T ORDER BY A")
            .unwrap()
            .rows
            .iter()
            .map(|t| t[0].as_int().unwrap())
            .collect();
        let mut expect: Vec<i64> = rows.iter().map(|(a, _)| *a).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(&distinct, &expect, "case {case}");

        let grouped = db.query("SELECT A, COUNT(*) FROM T GROUP BY A ORDER BY A").unwrap();
        assert_eq!(grouped.rows.len(), expect.len(), "case {case}");
        for row in &grouped.rows {
            let a = row[0].as_int().unwrap();
            let n = row[1].as_int().unwrap();
            let actual = rows.iter().filter(|(x, _)| *x == a).count() as i64;
            assert_eq!(n, actual, "case {case}");
        }
    }
}

/// DELETE removes exactly the matching rows.
#[test]
fn prop_delete_matches_reference() {
    let mut rng = SplitMix64::new(0x9019_0005);
    for case in 0..64u64 {
        let rows = arb_rows(&mut rng);
        let pred = arb_pred(&mut rng);
        let mut db = build_db(&rows, Design::IndexA);
        let deleted = db.execute(&format!("DELETE FROM T WHERE {}", pred.sql())).unwrap();
        let expect_deleted = rows.iter().filter(|(a, b)| pred.eval(Some(*a), *b)).count() as i64;
        assert_eq!(deleted.rows[0][0].as_int().unwrap(), expect_deleted, "case {case}");
        let remaining = db.query("SELECT COUNT(*) FROM T").unwrap();
        assert_eq!(
            remaining.rows[0][0].as_int().unwrap(),
            rows.len() as i64 - expect_deleted,
            "case {case}"
        );
    }
}
