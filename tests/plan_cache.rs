//! Statement plan cache behavior: repeated statements are answered from
//! the cache, any catalog change (DDL, UPDATE STATISTICS) forces
//! re-optimization, reopening a saved database starts cold, and a cached
//! plan executes exactly like a freshly optimized one.

mod common;

use common::fig1_db;
use std::path::PathBuf;
use system_r::Database;

const JOIN: &str = "SELECT NAME, DNAME FROM EMP, DEPT \
     WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME";

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sysr-plancache-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn repeated_statement_hits_cache() {
    let db = fig1_db(400, 10, 5);
    assert_eq!(db.plan_cache_stats(), (0, 0), "fresh database starts cold");

    let first = db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (0, 1), "first optimization is a miss");

    let second = db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 1), "same statement is a hit");
    assert_eq!(
        format!("{:?}", first.root),
        format!("{:?}", second.root),
        "cached plan is the optimizer's plan"
    );
    assert_eq!(db.plan_cache_len(), 1);
}

#[test]
fn query_path_uses_the_cache_and_results_match() {
    let db = fig1_db(400, 10, 5);
    let fresh = db.query(JOIN).unwrap();
    let (h0, _) = db.plan_cache_stats();
    let cached = db.query(JOIN).unwrap();
    let (h1, _) = db.plan_cache_stats();
    assert!(h1 > h0, "second execution should hit the plan cache");
    assert_eq!(fresh, cached, "cached plan must produce identical rows");
}

#[test]
fn ddl_forces_reoptimization() {
    let mut db = fig1_db(400, 10, 5);
    db.plan(JOIN).unwrap();
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 1));

    // CREATE TABLE changes the catalog: the cached entry is stale.
    db.execute("CREATE TABLE SCRATCH (X INTEGER)").unwrap();
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 2), "DDL must force a re-optimize");

    // CREATE INDEX can change the chosen access path: stale again.
    db.execute("CREATE INDEX SCRATCH_X ON SCRATCH (X)").unwrap();
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 3), "new index must force a re-optimize");
}

#[test]
fn update_statistics_forces_reoptimization() {
    let mut db = fig1_db(400, 10, 5);
    db.plan(JOIN).unwrap();
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 1));

    db.execute("UPDATE STATISTICS").unwrap();
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_stats(), (1, 2), "fresh statistics must force a re-optimize");
}

#[test]
fn reopened_database_starts_cold() {
    let dir = scratch_dir("reopen");
    let db = fig1_db(300, 10, 5);
    db.plan(JOIN).unwrap();
    db.plan(JOIN).unwrap();
    db.save(&dir).unwrap();

    let reopened = Database::open(&dir).unwrap();
    assert_eq!(reopened.plan_cache_stats(), (0, 0), "reopen must not inherit the cache");
    assert_eq!(reopened.plan_cache_len(), 0);
    reopened.plan(JOIN).unwrap();
    assert_eq!(reopened.plan_cache_stats(), (0, 1), "first plan after reopen is a miss");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn set_config_clears_cached_entries() {
    let mut db = fig1_db(300, 10, 5);
    db.plan(JOIN).unwrap();
    assert_eq!(db.plan_cache_len(), 1);

    // Any config change can change every plan: entries are dropped
    // eagerly rather than stamped.
    db.set_config(system_r::Config { w: 0.5, ..db.config() }).unwrap();
    assert_eq!(db.plan_cache_len(), 0, "set_config must clear cached plans");
    db.plan(JOIN).unwrap();
    let (_, misses) = db.plan_cache_stats();
    assert_eq!(misses, 2, "statement re-optimizes under the new config");
}

#[test]
fn distinct_statements_get_distinct_entries() {
    let db = fig1_db(300, 10, 5);
    db.plan(JOIN).unwrap();
    db.plan("SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME").unwrap();
    assert_eq!(db.plan_cache_stats(), (0, 2));
    assert_eq!(db.plan_cache_len(), 2);
}

#[test]
fn concurrent_sessions_count_hits_and_misses_exactly() {
    const THREADS: usize = 8;
    const REPS: u64 = 25;
    let db = fig1_db(300, 10, 5);
    assert_eq!(db.plan_cache_stats(), (0, 0), "cold start");

    std::thread::scope(|scope| {
        let db = &db;
        for _ in 0..THREADS {
            scope.spawn(move || {
                let session = db.session();
                for _ in 0..REPS {
                    session.plan(JOIN).unwrap();
                }
                let (hits, misses) = session.cache_stats();
                assert_eq!(hits + misses, REPS, "session accounting is per-request exact");
            });
        }
    });

    // Exactly one statement was ever planned, so hits + misses must equal
    // the total number of requests — the atomics lose no updates — and
    // only the first optimization(s) of the single key count as misses.
    let (hits, misses) = db.plan_cache_stats();
    assert_eq!(hits + misses, THREADS as u64 * REPS, "no request lost under concurrency");
    assert!(misses >= 1, "someone optimized the statement");
    assert!(
        misses <= THREADS as u64,
        "at worst each thread misses once on the cold key, never more (got {misses})"
    );
    assert_eq!(db.plan_cache_len(), 1, "one statement, one entry");
}

#[test]
fn catalog_version_bump_mid_flight_never_serves_stale() {
    use system_r::VersionedCache;

    // Drive the cache directly with self-describing payloads: each value
    // embeds the version it was inserted under, so any lookup returning a
    // mismatched payload is a stale serve — the bug the tentpole's
    // version stamping exists to prevent.
    let cache = VersionedCache::<u64>::new();
    let versions = 50u64;
    std::thread::scope(|scope| {
        let cache = &cache;
        // Writer: bump through versions, inserting the matching payload.
        scope.spawn(move || {
            for v in 0..versions {
                cache.insert("stmt".into(), v, v);
                std::thread::yield_now();
            }
        });
        // Readers: ask for a fixed version while the writer churns; any
        // Some must carry exactly that version's payload.
        for _ in 0..7 {
            scope.spawn(move || {
                for v in 0..versions {
                    for _ in 0..20 {
                        if let Some(got) = cache.lookup("stmt", v) {
                            assert_eq!(
                                got, v,
                                "lookup under version {v} served a value stamped {got}"
                            );
                        }
                    }
                }
            });
        }
    });
}

#[test]
fn ddl_between_concurrent_batches_is_never_stale() {
    let mut db = fig1_db(300, 10, 5);
    let batch = |db: &Database| {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(move || {
                    let session = db.session();
                    for _ in 0..10 {
                        session.plan(JOIN).unwrap();
                    }
                });
            }
        });
    };
    batch(&db);
    let (_, misses_before) = db.plan_cache_stats();

    // The catalog bump invalidates the cached entry; the next concurrent
    // batch must re-optimize (≥ 1 new miss) instead of serving the plan
    // optimized against the old catalog.
    db.execute("CREATE TABLE SCRATCH2 (X INTEGER)").unwrap();
    batch(&db);
    let (_, misses_after) = db.plan_cache_stats();
    assert!(
        misses_after > misses_before,
        "catalog version bump must force re-optimization ({misses_before} -> {misses_after})"
    );
}
