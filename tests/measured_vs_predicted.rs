//! The §7 evaluation methodology as a test suite: "Evaluation work on
//! comparing the choices made to the 'right' choice … the true optimal
//! path is selected in a large majority of cases. In many cases, the
//! ordering among the estimated costs … is precisely the same as that
//! among the actual measured costs."
//!
//! For each scenario we enumerate *every* complete plan (heuristic off),
//! execute each one cold, measure `PAGE FETCHES + W * RSI CALLS`, and
//! compare the optimizer's choice against the measured optimum.

mod common;

use common::fig1_db;
use system_r::core::{bind_select, Cost, Enumerator, PlanExpr, QueryPlan};
use system_r::sql::{parse_statement, Statement};
use system_r::{tuple, Config, Database};

/// Execute one raw plan cold and return its measured weighted cost.
fn measure(db: &Database, query: &system_r::core::BoundQuery, plan: PlanExpr) -> f64 {
    let full = QueryPlan {
        query: query.clone(),
        root: plan,
        subplans: vec![],
        block_filters: vec![],
        predicted: Cost::ZERO,
        qcard: 0.0,
        stats: Default::default(),
    };
    db.evict_buffers().unwrap();
    db.reset_io_stats();
    db.execute_plan(&full).expect("plan executes");
    Cost::from_io(&db.io_stats()).total(db.config().w)
}

/// Run one scenario: returns (chosen_measured, best_measured, rank
/// correlation between predicted and measured over all plans).
fn run_scenario(db: &Database, sql: &str) -> (f64, f64, f64, usize) {
    let Statement::Select(stmt) = parse_statement(sql).unwrap() else { panic!() };
    let bound = bind_select(db.catalog(), &stmt).unwrap();
    let config = Config { defer_cartesian: false, ..db.config() };
    let enumerator = Enumerator::new(db.catalog(), &bound, config);

    let (chosen, _) = enumerator.best_plan();
    let chosen_predicted = chosen.cost.total(db.config().w);
    let chosen_measured = measure(db, &bound, chosen.clone());

    let all = enumerator.all_plans(400);
    assert!(!all.is_empty());
    let mut pairs: Vec<(f64, f64)> = Vec::with_capacity(all.len());
    for plan in all {
        let predicted = plan.cost.total(db.config().w);
        let measured = measure(db, &bound, plan);
        pairs.push((predicted, measured));
    }
    // Include the chosen plan's point too.
    pairs.push((chosen_predicted, chosen_measured));
    let best_measured = pairs.iter().map(|&(_, m)| m).fold(f64::INFINITY, f64::min);
    let rho = spearman(&pairs);
    (chosen_measured, best_measured, rho, pairs.len())
}

/// Spearman rank correlation of (predicted, measured) pairs.
fn spearman(pairs: &[(f64, f64)]) -> f64 {
    let n = pairs.len();
    if n < 3 {
        return 1.0;
    }
    let rank = |values: Vec<f64>| -> Vec<f64> {
        let mut idx: Vec<usize> = (0..values.len()).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        let mut ranks = vec![0.0; values.len()];
        let mut i = 0;
        while i < idx.len() {
            // Average ranks over ties.
            let mut j = i;
            while j + 1 < idx.len() && values[idx[j + 1]] == values[idx[i]] {
                j += 1;
            }
            let avg = (i + j) as f64 / 2.0;
            for &k in &idx[i..=j] {
                ranks[k] = avg;
            }
            i = j + 1;
        }
        ranks
    };
    let rp = rank(pairs.iter().map(|&(p, _)| p).collect());
    let rm = rank(pairs.iter().map(|&(_, m)| m).collect());
    let mean = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut dp = 0.0;
    let mut dm = 0.0;
    for i in 0..n {
        let a = rp[i] - mean;
        let b = rm[i] - mean;
        num += a * b;
        dp += a * a;
        dm += b * b;
    }
    if dp == 0.0 || dm == 0.0 {
        return 1.0;
    }
    num / (dp * dm).sqrt()
}

struct Scenario {
    name: &'static str,
    db: Database,
    sql: &'static str,
}

fn small_buffer() -> Config {
    // A buffer far smaller than the working sets, so plan differences are
    // not erased by caching (System R's per-user buffer was small too).
    Config { buffer_pages: 16, ..Config::default() }
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();
    let pad = |i: i64| format!("p{i:057}");

    // Single relation, unique-index equal predicate (Table 2 situation 1).
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(60))").unwrap();
    db.insert_rows("T", (0..4000).map(|i| tuple![i, i % 40, pad(i)])).unwrap();
    db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
    db.execute("CREATE INDEX T_GRP ON T (GRP)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario { name: "unique-eq", db, sql: "SELECT PAD FROM T WHERE K = 123" });

    // Equal predicate through a clustered index.
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(60))").unwrap();
    db.insert_rows("T", (0..4000).map(|i| tuple![i, i % 40, pad(i)])).unwrap();
    db.execute("CREATE CLUSTERED INDEX T_GRP ON T (GRP)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario { name: "clustered-eq", db, sql: "SELECT PAD FROM T WHERE GRP = 7" });

    // Clustered range.
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(60))").unwrap();
    db.insert_rows("T", (0..4000).map(|i| tuple![common::scatter(i, 4000), i % 40, pad(i)]))
        .unwrap();
    db.execute("CREATE CLUSTERED INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario {
        name: "clustered-range",
        db,
        sql: "SELECT PAD FROM T WHERE K BETWEEN 100 AND 400",
    });

    // Order-by: sort vs scattered ordered index.
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(60))").unwrap();
    db.insert_rows("T", (0..3000).map(|i| tuple![common::scatter(i, 3000), i % 40, pad(i)]))
        .unwrap();
    db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario { name: "order-by", db, sql: "SELECT PAD FROM T ORDER BY K" });

    // Two-way join, selective outer with indexed inner: probes win big.
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE A (K INTEGER, TAG INTEGER, PAD VARCHAR(40))").unwrap();
    db.execute("CREATE TABLE B (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("A", (0..600).map(|i| tuple![i % 100, i % 60, format!("a{i:036}")])).unwrap();
    db.insert_rows("B", (0..6000i64).map(|i| tuple![i % 600, format!("b{i:036}")])).unwrap();
    db.execute("CREATE INDEX B_K ON B (K)").unwrap();
    // An index on TAG gives the optimizer the true 1/60 selectivity; with
    // no statistics it would guess the paper's 1/10 default and mis-size
    // the probe count (documented in EXPERIMENTS.md as an ablation).
    db.execute("CREATE INDEX A_TAG ON A (TAG)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario {
        name: "join-selective",
        db,
        sql: "SELECT A.PAD FROM A, B WHERE A.K = B.K AND A.TAG = 3",
    });

    // Two-way join, no helpful index on either side: merging scans win.
    let mut db = Database::with_config(small_buffer());
    db.execute("CREATE TABLE A (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.execute("CREATE TABLE B (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("A", (0..1500).map(|i| tuple![i % 400, format!("a{i:036}")])).unwrap();
    db.insert_rows("B", (0..1500i64).map(|i| tuple![i % 400, format!("b{i:036}")])).unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    out.push(Scenario {
        name: "join-unindexed",
        db,
        sql: "SELECT A.PAD FROM A, B WHERE A.K = B.K",
    });

    // The paper's three-way example.
    let mut db = fig1_db(2500, 25, 10);
    db.set_config(small_buffer()).unwrap();
    out.push(Scenario {
        name: "fig1",
        db,
        sql: "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
              WHERE TITLE='CLERK' AND LOC='DENVER'
                AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB",
    });

    out
}

#[test]
fn optimizer_picks_near_optimal_plans() {
    let mut optimal = 0;
    let mut near = 0;
    let mut total = 0;
    let mut report = String::new();
    for s in scenarios() {
        let (chosen, best, rho, n_plans) = run_scenario(&s.db, s.sql);
        total += 1;
        let ratio = if best > 0.0 { chosen / best } else { 1.0 };
        // "True optimal" with a 5% tolerance: merge-join variants differ by
        // a handful of temp pages and tie in practice.
        if ratio <= 1.05 {
            optimal += 1;
        }
        if ratio <= 2.0 {
            near += 1;
        }
        report.push_str(&format!(
            "{:<16} plans={:<3} chosen={:>10.1} best={:>10.1} ratio={:>5.2} rho={:>5.2}\n",
            s.name, n_plans, chosen, best, ratio, rho
        ));
    }
    eprintln!("{report}");
    // "the true optimal path is selected in a large majority of cases"
    assert!(
        optimal * 2 > total,
        "optimal in {optimal}/{total} scenarios — expected a majority\n{report}"
    );
    // And never a catastrophe in these scenarios.
    assert_eq!(near, total, "all choices within 2x of measured best\n{report}");
}

#[test]
fn predicted_and_measured_orderings_correlate() {
    let mut rho_sum = 0.0;
    let mut n = 0;
    for s in scenarios() {
        let (_, _, rho, n_plans) = run_scenario(&s.db, s.sql);
        if n_plans >= 4 {
            rho_sum += rho;
            n += 1;
        }
    }
    let mean_rho = rho_sum / n as f64;
    assert!(
        mean_rho > 0.5,
        "mean Spearman correlation between predicted and measured cost orderings = {mean_rho}"
    );
}
