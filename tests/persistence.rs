//! Persistence round-trip: a database saved to real page files must come
//! back byte-for-byte equivalent — same query results, same catalog
//! statistics — and the disk backend's I/O accounting must match the
//! buffer pool's page-fetch counters exactly.

mod common;

use common::fig1_db;
use std::path::PathBuf;
use system_r::Database;

/// The query corpus re-run before and after the round-trip: the same
/// shapes `sql_correctness` pins (filters, joins, the Fig. 1 three-way
/// join, grouping, subqueries), each with ORDER BY so row order is
/// deterministic.
const CORPUS: &[&str] = &[
    "SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME",
    "SELECT NAME FROM EMP WHERE DNO IN (1, 2) AND JOB = 5 ORDER BY NAME",
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME",
    "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB \
     WHERE TITLE = 'CLERK' AND LOC = 'DENVER' \
       AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB ORDER BY NAME",
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO ORDER BY DNO",
    "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER') ORDER BY NAME",
    "SELECT NAME, SAL FROM EMP WHERE SAL BETWEEN 2000 AND 30000 AND JOB IN (5, 6) ORDER BY NAME, SAL",
];

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sysr-persist-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// NCARD / TCARD / ICARD / NINDX for every object, as one comparable blob.
fn stats_fingerprint(db: &Database) -> String {
    let mut out = String::new();
    for rel in db.catalog().relations() {
        out.push_str(&format!(
            "rel {} ncard={} tcard={} valid={}\n",
            rel.name, rel.stats.ncard, rel.stats.tcard, rel.stats.valid
        ));
    }
    for idx in db.catalog().indexes() {
        out.push_str(&format!(
            "idx {} icard={} nindx={} valid={}\n",
            idx.name, idx.stats.icard, idx.stats.nindx, idx.stats.valid
        ));
    }
    out
}

#[test]
fn round_trip_reruns_the_correctness_corpus_identically() {
    let db = fig1_db(2_000, 25, 5);
    let before: Vec<_> =
        CORPUS.iter().map(|sql| db.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"))).collect();
    let stats_before = stats_fingerprint(&db);

    let dir = scratch_dir("roundtrip");
    db.save(&dir).expect("save");
    let reopened = Database::open(&dir).expect("open");

    assert_eq!(stats_fingerprint(&reopened), stats_before, "catalog statistics must survive");
    for (sql, expected) in CORPUS.iter().zip(&before) {
        let got = reopened.query(sql).unwrap_or_else(|e| panic!("reopened {sql}: {e}"));
        assert_eq!(got.columns, expected.columns, "column headers changed: {sql}");
        assert_eq!(got.rows, expected.rows, "rows changed after reopen: {sql}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn page_fetches_on_disk_backend_equal_backend_reads() {
    // The tentpole identity: with real page files behind the pool, every
    // counted page fetch is a device read — `EXPLAIN ANALYZE` fetches
    // correspond to actual I/O, not a residency simulation.
    let db = fig1_db(2_000, 25, 5);
    let dir = scratch_dir("identity");
    db.save(&dir).expect("save");
    let reopened = Database::open(&dir).expect("open");

    for sql in CORPUS {
        reopened.evict_buffers().expect("evict");
        reopened.reset_io_stats();
        reopened.query(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let io = reopened.io_stats();
        let fetches = io.data_page_fetches + io.index_page_fetches + io.temp_page_fetches;
        assert_eq!(
            fetches, io.backend_reads,
            "page fetches must equal device reads for {sql}: {io}"
        );
        assert!(io.data_page_fetches > 0, "cold scan must touch data pages: {sql}");
    }

    // The rendered EXPLAIN ANALYZE report rides on the same counters.
    let report = reopened
        .explain_analyze("SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME")
        .expect("explain analyze");
    assert!(report.contains("measured io:"), "analyze report must show measured I/O:\n{report}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_and_truncated_files_are_clean_errors() {
    let db = fig1_db(500, 10, 5);
    let dir = scratch_dir("torn");
    db.save(&dir).expect("save");

    // Torn write: chop the segment file mid-page.
    let seg = dir.join("seg-0.pages");
    let bytes = std::fs::read(&seg).expect("read seg");
    assert!(bytes.len() > 4096, "fixture must span pages");
    std::fs::write(&seg, &bytes[..bytes.len() - 1000]).expect("truncate");
    let err = Database::open(&dir).err().expect("torn page file must fail to open");
    let msg = err.to_string();
    assert!(!msg.is_empty());

    // Restore, then corrupt a single byte instead.
    std::fs::write(&seg, &bytes).expect("restore");
    Database::open(&dir).expect("restored database opens again");
    let mut flipped = bytes.clone();
    flipped[200] ^= 0x5A;
    std::fs::write(&seg, &flipped).expect("corrupt");
    assert!(Database::open(&dir).is_err(), "checksum mismatch must fail to open");

    // Truncated metadata is a parse error, not a panic.
    std::fs::write(&seg, &bytes).expect("restore again");
    let meta = dir.join("storage.meta");
    let text = std::fs::read_to_string(&meta).expect("read meta");
    let keep = text.len() / 2;
    std::fs::write(&meta, &text[..keep]).expect("truncate meta");
    assert!(Database::open(&dir).is_err(), "truncated storage.meta must fail to open");

    // Missing catalog metadata fails cleanly too.
    std::fs::write(&meta, &text).expect("restore meta");
    std::fs::remove_file(dir.join("catalog.meta")).expect("drop catalog.meta");
    assert!(Database::open(&dir).is_err(), "missing catalog.meta must fail to open");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn save_into_and_reopen_from_a_nested_directory() {
    // `save` must create the directory path itself, and a reopened
    // database stays fully writable: inserts, new indexes, re-gathered
    // statistics, and a second save into the same directory.
    let db = fig1_db(500, 10, 5);
    let dir = scratch_dir("nested").join("a").join("b");
    db.save(&dir).expect("save into nested path");

    let mut reopened = Database::open(&dir).expect("open");
    reopened
        .execute("INSERT INTO DEPT VALUES (99, 'NEW-DEPT', 'DENVER')")
        .expect("insert after reopen");
    reopened.execute("UPDATE STATISTICS").expect("statistics after reopen");
    let n = reopened.query("SELECT DNAME FROM DEPT WHERE DNO = 99").expect("query new row");
    assert_eq!(n.rows.len(), 1);
    reopened.save(&dir).expect("second save");

    let third = Database::open(&dir).expect("reopen after second save");
    let n = third.query("SELECT DNAME FROM DEPT WHERE DNO = 99").expect("query survives");
    assert_eq!(n.rows.len(), 1);
    let _ = std::fs::remove_dir_all(
        std::env::temp_dir().join(format!("sysr-persist-{}-nested", std::process::id())),
    );
}
