//! The audit crate turned on the repo's own test corpus: every plan the
//! optimizer produces for the paper's Fig. 1 and §6 databases must pass
//! the full invariant catalogue (DESIGN.md §8) end to end — static plan
//! checks, search-trace accounting, and executor I/O accounting — and for
//! every ≤ 4-relation query the DP winner must cost exactly the minimum
//! over the exhaustively enumerated plan space.

mod common;

use common::{employee_db, fig1_db};
use system_r::audit::differential;
use system_r::rss::SplitMix64;
use system_r::Database;

const FIG1_JOIN: &str = "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB
    WHERE TITLE = 'CLERK' AND LOC = 'DENVER'
      AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB";

/// Queries exercising every plan shape against the Fig. 1 schema.
fn fig1_queries() -> Vec<&'static str> {
    vec![
        "SELECT NAME FROM EMP",
        "SELECT NAME FROM EMP WHERE DNO = 3",
        "SELECT NAME FROM EMP WHERE SAL BETWEEN 2000 AND 30000",
        "SELECT NAME FROM EMP WHERE DNO = 3 OR JOB = 6",
        "SELECT NAME FROM EMP ORDER BY DNO",
        "SELECT NAME FROM EMP WHERE JOB IN (5, 6, 7) ORDER BY JOB",
        "SELECT DNO, COUNT(*), AVG(SAL) FROM EMP GROUP BY DNO",
        FIG1_JOIN,
        "SELECT EMP.NAME, DEPT.DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO",
        "SELECT EMP.NAME, DEPT.DNAME FROM EMP, DEPT
           WHERE EMP.DNO = DEPT.DNO ORDER BY DEPT.DNO",
        "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER')",
        "SELECT NAME FROM EMP WHERE SAL > (SELECT AVG(SAL) FROM EMP)",
    ]
}

fn audit_all(db: &Database, queries: &[&str]) {
    for sql in queries {
        let report = db.audit(sql).unwrap_or_else(|e| panic!("audit({sql}) failed: {e}"));
        assert!(report.ok(), "invariant violations for {sql}:\n{}", report.render());
        assert!(report.checks > 0, "auditor checked nothing for {sql}");
    }
}

#[test]
fn fig1_corpus_passes_every_invariant_end_to_end() {
    let db = fig1_db(2000, 40, 5);
    audit_all(&db, &fig1_queries());
}

#[test]
fn section6_nested_queries_pass_every_invariant() {
    let db = employee_db(400, 7);
    audit_all(
        &db,
        &[
            // §6's uncorrelated scalar subquery...
            "SELECT NAME FROM EMPLOYEE WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)",
            // ...its IN form...
            "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER IN
               (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')",
            // ...and the correlated variant re-evaluated per binding.
            "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
               (SELECT AVG(SALARY) FROM EMPLOYEE WHERE MANAGER = X.MANAGER)",
        ],
    );
}

/// Seeded random single-table and two-table queries over the live Fig. 1
/// database: each one goes through the full optimize → verify → execute →
/// verify-accounting pipeline.
#[test]
fn seeded_random_queries_pass_every_invariant() {
    let db = fig1_db(1500, 30, 5);
    let mut rng = SplitMix64::new(0x5EED_1779);
    for round in 0..25 {
        let mut sql = String::from("SELECT NAME FROM EMP");
        let mut preds: Vec<String> = Vec::new();
        if rng.chance(0.6) {
            preds.push(format!("EMP.DNO = {}", rng.range_i64(0, 29)));
        }
        if rng.chance(0.4) {
            let lo = rng.range_i64(1000, 30_000);
            preds.push(format!("EMP.SAL BETWEEN {lo} AND {}", lo + rng.range_i64(100, 20_000)));
        }
        if rng.chance(0.3) {
            preds.push(format!("EMP.JOB >= {}", rng.range_i64(5, 9)));
        }
        let join = rng.chance(0.4);
        if join {
            sql = String::from("SELECT NAME, DNAME FROM EMP, DEPT");
            preds.push("EMP.DNO = DEPT.DNO".to_string());
        }
        if !preds.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&preds.join(" AND "));
        }
        if rng.chance(0.3) {
            sql.push_str(" ORDER BY EMP.DNO");
        }
        let report =
            db.audit(&sql).unwrap_or_else(|e| panic!("round {round}: audit({sql}) failed: {e}"));
        assert!(report.ok(), "round {round}: violations for {sql}:\n{}", report.render());
    }
}

/// DP vs. exhaustive over the live catalog (real gathered statistics, not
/// corpus fixtures): for every ≤ 4-relation query the DP winner's cost
/// must equal the minimum over all exhaustively enumerated plans.
#[test]
fn dp_matches_exhaustive_enumeration_on_live_statistics() {
    let db = fig1_db(2000, 40, 5);
    let mut checks = 0;
    let mut queries: Vec<String> = fig1_queries().iter().map(|s| s.to_string()).collect();

    // Seeded ≤ 3-relation join variants with different predicate mixes.
    let mut rng = SplitMix64::new(0xD1FF_5EED);
    for _ in 0..10 {
        let mut preds = vec!["EMP.DNO = DEPT.DNO".to_string()];
        let three_way = rng.chance(0.5);
        if three_way {
            preds.push("EMP.JOB = JOB.JOB".to_string());
        }
        if rng.chance(0.5) {
            preds.push(format!("DEPT.DNO < {}", rng.range_i64(5, 35)));
        }
        if rng.chance(0.5) {
            preds.push(format!("EMP.SAL > {}", rng.range_i64(2000, 40_000)));
        }
        let tables = if three_way { "EMP, DEPT, JOB" } else { "EMP, DEPT" };
        let order = if rng.chance(0.4) { " ORDER BY EMP.DNO" } else { "" };
        queries.push(format!("SELECT NAME FROM {tables} WHERE {}{order}", preds.join(" AND ")));
    }

    for sql in &queries {
        let report = differential::differential_check(db.catalog(), sql, sql, db.config());
        assert!(report.ok(), "DP vs exhaustive mismatch:\n{}", report.render());
        checks += report.checks;
    }
    // Subquery cases are skipped by design; the plain joins must not be.
    assert!(checks >= 20, "only {checks} differential checks ran — oracle mostly skipped");
}
