//! Concurrent query serving: M sessions on one shared `Database` must
//! behave exactly like one session run M times.
//!
//! The stress half hammers the Fig. 1 database and a 4-relation chain
//! from 8 threads × 50+ queries each, comparing every plan rendering and
//! every result set bit-for-bit against a serial baseline captured
//! first. The persistence half keeps readers running while `sync`
//! flushes dirty pages from another thread, then proves the saved image
//! still round-trips.
//!
//! Run with `RUST_TEST_THREADS` unset (scripts/ci.sh does) so the test
//! harness does not serialize these tests against each other and the
//! scoped threads genuinely interleave.

mod common;

use common::fig1_db;
use std::path::PathBuf;
use system_r::core::QueryPlan;
use system_r::{tuple, Database};

/// Worker threads per stress run — matches the audit rule and the plan
/// cache's stripe count.
const THREADS: usize = 8;

/// The stress corpus over the Fig. 1 schema: every optimizer feature the
/// serial suites pin, each with ORDER BY so row order is deterministic.
const FIG1_CORPUS: &[&str] = &[
    "SELECT NAME FROM EMP WHERE SAL > 9000 ORDER BY NAME",
    "SELECT NAME FROM EMP WHERE DNO IN (1, 2) AND JOB = 5 ORDER BY NAME",
    "SELECT NAME, DNAME FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' ORDER BY NAME",
    "SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB \
     WHERE TITLE = 'CLERK' AND LOC = 'DENVER' \
       AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB ORDER BY NAME",
    "SELECT DNO, COUNT(*) FROM EMP GROUP BY DNO ORDER BY DNO",
    "SELECT NAME FROM EMP WHERE DNO IN (SELECT DNO FROM DEPT WHERE LOC = 'DENVER') ORDER BY NAME",
    "SELECT NAME, SAL FROM EMP WHERE SAL BETWEEN 2000 AND 30000 AND JOB IN (5, 6) \
     ORDER BY NAME, SAL",
];

/// Chain-join corpus: run against a separate 4-relation database.
const CHAIN_CORPUS: &[&str] = &[
    "SELECT T0.K FROM T0, T1, T2, T3 \
     WHERE T0.FK = T1.K AND T1.FK = T2.K AND T2.FK = T3.K ORDER BY T0.K",
    "SELECT T0.K, T1.FK FROM T0, T1 WHERE T0.FK = T1.K AND T1.V < 40 ORDER BY T0.K",
    "SELECT T2.V FROM T2 WHERE T2.K BETWEEN 10 AND 60 ORDER BY T2.V, T2.K",
];

/// A 4-relation FK chain `T0 → T1 → T2 → T3` with a unique key index per
/// table and a non-unique index on each FK column.
fn chain_db(rows: i64) -> Database {
    let mut db = Database::new();
    for i in 0..4 {
        db.execute(&format!("CREATE TABLE T{i} (K INTEGER, FK INTEGER, V INTEGER)")).unwrap();
        db.insert_rows(
            &format!("T{i}"),
            (0..rows).map(|r| tuple![r, (r * 7 + i) % rows, (r * 13) % 100]),
        )
        .unwrap();
        db.execute(&format!("CREATE UNIQUE INDEX T{i}_K ON T{i} (K)")).unwrap();
        db.execute(&format!("CREATE INDEX T{i}_FK ON T{i} (FK)")).unwrap();
    }
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

/// `Debug`-render a plan with wall-clock time zeroed, so comparisons see
/// only the deterministic parts.
fn plan_fingerprint(mut plan: QueryPlan) -> String {
    fn strip(plan: &mut QueryPlan) {
        plan.stats.elapsed_micros = 0;
        for sub in &mut plan.subplans {
            strip(sub);
        }
    }
    strip(&mut plan);
    format!("{plan:?}")
}

/// Serial baseline for one corpus: `(sql, plan fingerprint, rows)`.
fn baselines(db: &Database, corpus: &[&str]) -> Vec<(String, String, String)> {
    let session = db.session();
    corpus
        .iter()
        .map(|sql| {
            let plan = session.plan(sql).unwrap_or_else(|e| panic!("baseline plan `{sql}`: {e}"));
            let rows = session.query(sql).unwrap_or_else(|e| panic!("baseline query `{sql}`: {e}"));
            ((*sql).to_string(), plan_fingerprint(plan), format!("{:?}", rows.rows))
        })
        .collect()
}

/// Stress one database: 8 threads, each replanning and re-executing the
/// corpus until it has run at least `min_queries` queries, comparing
/// everything against the serial baseline. Returns the total number of
/// plan requests made (baseline + stress), so callers can cross-check
/// the shared cache counters.
fn stress(db: &Database, corpus: &[&str], min_queries: usize) -> u64 {
    let base = baselines(db, corpus);
    let rounds = min_queries.div_ceil(corpus.len());
    let failures: Vec<String> = std::thread::scope(|scope| {
        let base = &base;
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                scope.spawn(move || {
                    let session = db.session();
                    let mut bad = Vec::new();
                    for round in 0..rounds {
                        for (sql, want_plan, want_rows) in base {
                            match session.plan(sql) {
                                Ok(plan) => {
                                    if plan_fingerprint(plan) != *want_plan {
                                        bad.push(format!(
                                            "thread {t} round {round}: plan drift for `{sql}`"
                                        ));
                                    }
                                }
                                Err(e) => {
                                    bad.push(format!("thread {t}: plan `{sql}` failed: {e}"));
                                }
                            }
                            match session.query(sql) {
                                Ok(rows) if format!("{:?}", rows.rows) != *want_rows => bad.push(
                                    format!("thread {t} round {round}: row drift for `{sql}`"),
                                ),
                                Ok(_) => {}
                                Err(e) => {
                                    bad.push(format!("thread {t}: query `{sql}` failed: {e}"));
                                }
                            }
                        }
                    }
                    let (hits, misses) = session.cache_stats();
                    let requests = (rounds * corpus.len() * 2) as u64;
                    if hits + misses != requests {
                        bad.push(format!(
                            "thread {t}: session counted {hits} hits + {misses} misses, \
                             expected {requests} total requests"
                        ));
                    }
                    bad
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("stress worker panicked")).collect()
    });
    assert!(failures.is_empty(), "{} divergences:\n{}", failures.len(), failures.join("\n"));
    // Baseline: 2 requests per statement; stress: 2 per statement per
    // round per thread.
    (corpus.len() * 2 + THREADS * rounds * corpus.len() * 2) as u64
}

#[test]
fn eight_threads_serve_fig1_identically() {
    let db = fig1_db(400, 10, 5);
    let (h0, m0) = db.plan_cache_stats();
    let requests = stress(&db, FIG1_CORPUS, 50);
    let (h1, m1) = db.plan_cache_stats();
    assert_eq!(
        (h1 + m1) - (h0 + m0),
        requests,
        "shared cache counters must account for every plan request exactly"
    );
    // Every statement missed at least once (first planning) and the
    // steady state is all hits; the cache never grows past the corpus.
    assert!(db.plan_cache_len() <= FIG1_CORPUS.len(), "cache holds at most one plan per statement");
}

#[test]
fn eight_threads_serve_chain_joins_identically() {
    let db = chain_db(120);
    stress(&db, CHAIN_CORPUS, 50);
}

#[test]
fn readers_stay_consistent_while_sync_flushes() {
    let dir = scratch_dir("serve-under-sync");
    // Build on disk so `sync` has real page files to flush to.
    {
        let db = fig1_db(300, 10, 5);
        db.save(&dir).unwrap();
    }
    let db = Database::open(&dir).unwrap();
    let base = baselines(&db, FIG1_CORPUS);

    let failures: Vec<String> = std::thread::scope(|scope| {
        let base = &base;
        let db = &db;
        let mut handles: Vec<_> = (0..THREADS - 1)
            .map(|t| {
                scope.spawn(move || {
                    let session = db.session();
                    let mut bad = Vec::new();
                    for round in 0..8 {
                        for (sql, _, want_rows) in base {
                            match session.query(sql) {
                                Ok(rows) if format!("{:?}", rows.rows) != *want_rows => {
                                    bad.push(format!(
                                        "reader {t} round {round}: row drift under sync for `{sql}`"
                                    ));
                                }
                                Ok(_) => {}
                                Err(e) => bad.push(format!("reader {t}: `{sql}` failed: {e}")),
                            }
                        }
                    }
                    bad
                })
            })
            .collect();
        handles.push(scope.spawn(move || {
            let mut bad = Vec::new();
            for i in 0..40 {
                if let Err(e) = db.sync() {
                    bad.push(format!("sync {i} failed: {e}"));
                }
            }
            bad
        }));
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    });
    assert!(failures.is_empty(), "{}", failures.join("\n"));

    // The image on disk after concurrent syncs still round-trips.
    db.sync().unwrap();
    drop(db);
    let reopened = Database::open(&dir).unwrap();
    for (sql, _, want_rows) in &base {
        let rows = reopened.query(sql).unwrap_or_else(|e| panic!("reopen `{sql}`: {e}"));
        assert_eq!(&format!("{:?}", rows.rows), want_rows, "reopened rows differ for `{sql}`");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sysr-concurrent-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}
