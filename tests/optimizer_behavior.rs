//! Plan-choice behavior: the optimizer must reproduce the qualitative
//! decisions the paper's cost model implies.

mod common;

use common::fig1_db;
use system_r::core::{Access, PlanExpr, PlanNode, QueryPlan};
use system_r::rss::RsiScan;
use system_r::{tuple, Config, Database};

fn scan_access(plan: &QueryPlan) -> &Access {
    let PlanNode::Scan(s) = &plan.root.node else {
        panic!("expected a scan root: {:?}", plan.root)
    };
    &s.access
}

fn find_join(plan: &PlanExpr) -> Option<&'static str> {
    match &plan.node {
        PlanNode::NestedLoop { .. } => Some("nested-loop"),
        PlanNode::Merge { .. } => Some("merge"),
        PlanNode::Sort { input, .. } => find_join(input),
        PlanNode::Scan(_) => None,
    }
}

#[test]
fn selective_predicate_uses_index_unselective_scans() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("T", (0..20_000).map(|i| tuple![i, i % 4, format!("pad-{i:035}")])).unwrap();
    db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
    db.execute("CREATE INDEX T_GRP ON T (GRP)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();

    // K = const matches a unique index: always the index.
    let plan = db.plan("SELECT PAD FROM T WHERE K = 17").unwrap();
    assert!(matches!(scan_access(&plan), Access::Index { .. }), "{}", plan.explain(db.catalog()));

    // GRP = const selects 1/4 of 20k rows through a non-clustered index:
    // the segment scan is cheaper than ~5000 scattered data-page fetches.
    let plan = db.plan("SELECT PAD FROM T WHERE GRP = 2").unwrap();
    assert!(matches!(scan_access(&plan), Access::Segment), "{}", plan.explain(db.catalog()));
}

#[test]
fn clustering_flips_the_choice() {
    // Same query, same statistics shape — but the index is clustered, so
    // F * (NINDX + TCARD) beats the full segment scan.
    let mut db = Database::new();
    db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("T", (0..20_000).map(|i| tuple![i, i % 4, format!("pad-{i:035}")])).unwrap();
    db.execute("CREATE CLUSTERED INDEX T_GRP ON T (GRP)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    let plan = db.plan("SELECT PAD FROM T WHERE GRP = 2").unwrap();
    assert!(
        matches!(scan_access(&plan), Access::Index { .. }),
        "clustered index must win: {}",
        plan.explain(db.catalog())
    );
}

#[test]
fn range_scan_uses_clustered_index_bounds() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("T", (0..10_000).map(|i| tuple![i, format!("p{i:038}")])).unwrap();
    db.execute("CREATE CLUSTERED INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    let plan = db.plan("SELECT PAD FROM T WHERE K BETWEEN 100 AND 150").unwrap();
    let Access::Index { range, .. } = scan_access(&plan) else {
        panic!("{}", plan.explain(db.catalog()))
    };
    assert!(range.is_some(), "BETWEEN must become start/stop keys");
    // Execute and confirm the scan touched only a sliver of the relation.
    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let r = db.query("SELECT PAD FROM T WHERE K BETWEEN 100 AND 150").unwrap();
    assert_eq!(r.len(), 51);
    let io = db.io_stats();
    let total_pages = db.catalog().relation_by_name("T").unwrap().stats.tcard;
    assert!(
        io.data_page_fetches < total_pages / 10,
        "range scan must touch a small fraction: {} of {total_pages}",
        io.data_page_fetches
    );
}

#[test]
fn interesting_order_avoids_sort_when_cheap() {
    let mut db = Database::new();
    db.execute("CREATE TABLE T (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows("T", (0..5000).map(|i| tuple![i, format!("p{i:038}")])).unwrap();
    db.execute("CREATE CLUSTERED INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    // Clustered index delivers K order for free; no Sort node expected.
    let plan = db.plan("SELECT K FROM T ORDER BY K").unwrap();
    assert!(
        !matches!(plan.root.node, PlanNode::Sort { .. }),
        "clustered index order should be used: {}",
        plan.explain(db.catalog())
    );
    // DESC cannot come from our ascending scans; the executor sorts, and
    // results must still be correct.
    let r = db.query("SELECT K FROM T WHERE K < 5 ORDER BY K DESC").unwrap();
    assert_eq!(common::int_column(&r.rows, 0), vec![4, 3, 2, 1, 0]);
}

#[test]
fn join_method_crossover_with_outer_size() {
    // Inner relation with an index on the join column. A tiny restricted
    // outer probes it (nested loops); an unrestricted large outer makes
    // rescanning too expensive relative to merging.
    let build = |n_outer: i64, filter: &str| -> &'static str {
        let mut db = Database::new();
        db.execute("CREATE TABLE OUTR (K INTEGER, TAG INTEGER, PAD VARCHAR(30))").unwrap();
        db.execute("CREATE TABLE INNR (K INTEGER, PAD VARCHAR(30))").unwrap();
        db.insert_rows(
            "OUTR",
            (0..n_outer).map(|i| tuple![i % 1000, i % 100, format!("o{i:027}")]),
        )
        .unwrap();
        db.insert_rows("INNR", (0..20_000i64).map(|i| tuple![i % 1000, format!("i{i:027}")]))
            .unwrap();
        db.execute("CREATE INDEX INNR_K ON INNR (K)").unwrap();
        // The TAG index exists for its ICARD statistic: without it the
        // TAG filter gets the 1/10 default instead of its true 1/100.
        db.execute("CREATE INDEX OUTR_TAG ON OUTR (TAG)").unwrap();
        db.execute("UPDATE STATISTICS").unwrap();
        let sql = format!("SELECT OUTR.PAD FROM OUTR, INNR WHERE OUTR.K = INNR.K {filter}");
        let plan = db.plan(&sql).unwrap();
        find_join(&plan.root).expect("join expected")
    };
    // Selective outer: nested loops.
    assert_eq!(build(5000, "AND OUTR.TAG = 7"), "nested-loop");
    // Full large outer against unindexed inner: merge scans win.
    assert_eq!(build(20_000, ""), "merge");
}

#[test]
fn w_weighting_shifts_plan_choice() {
    // For a sargable predicate, SARGs equalize RSI counts across paths, so
    // W cannot flip those choices — W acts where plans differ in tuple
    // traffic. ORDER BY is such a case: the sort alternative reads every
    // tuple twice (scan + temp-list read-back), while the ordered
    // non-clustered index reads each once but fetches far more pages.
    let mut db = Database::with_config(Config { w: 0.0, buffer_pages: 8, ..Config::default() });
    db.execute("CREATE TABLE T (K INTEGER, PAD VARCHAR(40))").unwrap();
    db.insert_rows(
        "T",
        (0..20_000).map(|i| tuple![common::scatter(i, 20_000), format!("p{i:037}")]),
    )
    .unwrap();
    db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();

    let sql = "SELECT PAD FROM T ORDER BY K";
    let plan_low_w = db.plan(sql).unwrap();
    assert!(
        matches!(plan_low_w.root.node, PlanNode::Sort { .. }),
        "W=0: segment scan + sort (~750 pages) beats the unclustered index (~20k fetches): {}",
        plan_low_w.explain(db.catalog())
    );

    db.set_config(Config { w: 3.0, buffer_pages: 8, ..Config::default() }).unwrap();
    let plan_high_w = db.plan(sql).unwrap();
    assert!(
        matches!(
            &plan_high_w.root.node,
            PlanNode::Scan(s) if matches!(s.access, Access::Index { .. })
        ),
        "W=3: the sort's doubled RSI traffic dominates; the ordered index wins: {}",
        plan_high_w.explain(db.catalog())
    );
}

#[test]
fn fig1_reports_search_statistics() {
    let db = fig1_db(2000, 40, 10);
    let plan = db
        .plan(
            "SELECT NAME FROM EMP, DEPT, JOB
             WHERE TITLE='CLERK' AND LOC='DENVER'
               AND EMP.DNO = DEPT.DNO AND EMP.JOB = JOB.JOB",
        )
        .unwrap();
    let s = plan.stats;
    assert!(s.subsets_examined >= 6);
    assert!(s.plans_considered > s.plans_kept);
    assert!(s.heuristic_skips > 0, "DEPT-JOB Cartesian extensions must be skipped");
    // "a few thousand bytes" — we are in the same order of magnitude.
    assert!(s.solution_bytes > 0 && s.solution_bytes < 1_000_000, "{}", s.solution_bytes);
}

#[test]
fn sargs_filter_below_the_rsi() {
    // The same result computed twice: the SARG version must cross the RSI
    // far fewer times.
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, PAD VARCHAR(30))").unwrap();
    db.insert_rows("T", (0..10_000).map(|i| tuple![i % 100, format!("x{i:027}")])).unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let r = db.query("SELECT PAD FROM T WHERE A = 5").unwrap();
    assert_eq!(r.len(), 100);
    let io = db.io_stats();
    assert_eq!(io.rsi_calls, 100, "only matching tuples cross the interface");
    assert!(io.data_page_fetches > 50, "but the whole segment was still read");
}

#[test]
fn probe_values_bound_at_execution() {
    // Nested-loop inner probes use the outer tuple's value: each distinct
    // outer key should open a narrow index range, not rescan the inner.
    let mut db = Database::new();
    db.execute("CREATE TABLE SMALL (K INTEGER)").unwrap();
    db.execute("CREATE TABLE BIG (K INTEGER, PAD VARCHAR(30))").unwrap();
    db.insert_rows("SMALL", (0..5).map(|i| tuple![i * 100])).unwrap();
    db.insert_rows("BIG", (0..50_000i64).map(|i| tuple![i % 1000, format!("p{i:027}")])).unwrap();
    db.execute("CREATE INDEX BIG_K ON BIG (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    let plan = db.plan("SELECT SMALL.K FROM SMALL, BIG WHERE SMALL.K = BIG.K").unwrap();
    assert_eq!(find_join(&plan.root), Some("nested-loop"), "{}", plan.explain(db.catalog()));
    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let r = db.query("SELECT SMALL.K FROM SMALL, BIG WHERE SMALL.K = BIG.K").unwrap();
    assert_eq!(r.len(), 5 * 50); // each key appears 50 times in BIG
    let io = db.io_stats();
    let big_pages = db.catalog().relation_by_name("BIG").unwrap().stats.tcard;
    assert!(
        io.data_page_fetches < big_pages,
        "probes must not scan all {big_pages} data pages (got {})",
        io.data_page_fetches
    );
}

#[test]
fn index_only_scan_skips_data_pages_when_enabled() {
    let build = |index_only: bool| {
        let mut db = Database::with_config(Config {
            index_only_scans: index_only,
            buffer_pages: 16,
            ..Config::default()
        });
        db.execute("CREATE TABLE T (K INTEGER, GRP INTEGER, PAD VARCHAR(60))").unwrap();
        db.insert_rows(
            "T",
            (0..8000).map(|i| tuple![common::scatter(i, 8000), i % 40, format!("p{i:056}")]),
        )
        .unwrap();
        db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
        db.execute("UPDATE STATISTICS").unwrap();
        db
    };
    // The query touches only K, which the index covers.
    let sql = "SELECT K FROM T WHERE K BETWEEN 100 AND 2000 ORDER BY K";

    let db = build(true);
    let plan = db.plan(sql).unwrap();
    let text = plan.explain(db.catalog());
    assert!(text.contains("INDEX-ONLY"), "{text}");
    db.evict_buffers().unwrap();
    db.reset_io_stats();
    let r = db.query(sql).unwrap();
    assert_eq!(r.len(), 1901);
    assert_eq!(common::int_column(&r.rows, 0)[0], 100);
    let io = db.io_stats();
    assert_eq!(io.data_page_fetches, 0, "index-only scan must not touch data pages");
    assert!(io.index_page_fetches > 0);

    // Off (the paper's behavior): data pages are fetched per tuple.
    let db = build(false);
    let plan = db.plan(sql).unwrap();
    assert!(!plan.explain(db.catalog()).contains("INDEX-ONLY"));
    db.evict_buffers().unwrap();
    db.reset_io_stats();
    let r2 = db.query(sql).unwrap();
    assert_eq!(r2.rows, r.rows, "results identical either way");
    assert!(db.io_stats().data_page_fetches > 0);
}

#[test]
fn index_only_not_used_when_query_needs_other_columns() {
    let mut db = Database::with_config(Config { index_only_scans: true, ..Config::default() });
    db.execute("CREATE TABLE T (K INTEGER, PAD VARCHAR(30))").unwrap();
    db.insert_rows("T", (0..2000).map(|i| tuple![i, format!("p{i:027}")])).unwrap();
    db.execute("CREATE UNIQUE INDEX T_K ON T (K)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    // PAD is not in the key: must fetch data pages.
    let plan = db.plan("SELECT PAD FROM T WHERE K = 7").unwrap();
    assert!(!plan.explain(db.catalog()).contains("INDEX-ONLY"));
    let r = db.query("SELECT PAD FROM T WHERE K = 7").unwrap();
    assert_eq!(r.rows[0][0].as_str().unwrap(), format!("p{:027}", 7));
}

#[test]
fn segment_scan_via_rss_matches_tcard() {
    // Direct RSS-level check that the executor's accounting equals the
    // statistic the optimizer uses.
    let mut db = Database::new();
    db.execute("CREATE TABLE T (A INTEGER, PAD VARCHAR(30))").unwrap();
    db.insert_rows("T", (0..5000).map(|i| tuple![i, format!("p{i:027}")])).unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    let rel = db.catalog().relation_by_name("T").unwrap();
    let (tcard, seg, rel_id) = (rel.stats.tcard, rel.segment, rel.id);
    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let mut scan = system_r::rss::SegmentScan::open(
        db.storage(),
        seg,
        rel_id,
        system_r::rss::SargExpr::always_true(),
    );
    let n = scan.collect_all().unwrap().len();
    assert_eq!(n, 5000);
    assert_eq!(db.io_stats().data_page_fetches, tcard);
}
