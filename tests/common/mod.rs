//! Shared test fixtures: deterministic workloads over the paper's schemas.
//!
//! Compiled into several test binaries, each using a different subset.
#![allow(dead_code)]

use system_r::rss::{Tuple, Value};
use system_r::{tuple, Database};

/// Deterministic pseudo-random permutation step (no rand dependency needed
/// for fixtures; coprime stride scatter).
pub fn scatter(i: i64, n: i64) -> i64 {
    (i * 7919) % n
}

/// The paper's Fig. 1 database: EMP (n_emp rows), DEPT (n_dept), JOB
/// (n_job), with the indexes the example assumes (EMP.DNO, EMP.JOB,
/// DEPT.DNO, JOB.JOB) and fresh statistics.
///
/// Data is deterministic: employee `i` belongs to department
/// `scatter(i) % n_dept` and job `i % n_job`; department `d` is located in
/// one of 5 cities; job titles cycle through 5 names with job 5 = CLERK,
/// matching the paper's example values.
pub fn fig1_db(n_emp: i64, n_dept: i64, n_job: i64) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)").unwrap();
    db.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))").unwrap();
    db.execute("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR(20))").unwrap();

    let cities = ["DENVER", "SAN JOSE", "TUCSON", "BOSTON", "AUSTIN"];
    let titles = ["CLERK", "TYPIST", "SALES", "MECHANIC", "ENGINEER"];

    db.insert_rows(
        "EMP",
        (0..n_emp).map(|i| {
            tuple![
                format!("EMP-{i:06}"),
                scatter(i, n_emp) % n_dept,
                5 + (i % n_job),
                1000.0 + (scatter(i, n_emp) as f64) % 50_000.0
            ]
        }),
    )
    .unwrap();
    db.insert_rows(
        "DEPT",
        (0..n_dept)
            .map(|d| tuple![d, format!("DEPT-{d:03}"), cities[(d % cities.len() as i64) as usize]]),
    )
    .unwrap();
    db.insert_rows(
        "JOB",
        (0..n_job).map(|j| tuple![5 + j, titles[(j % titles.len() as i64) as usize]]),
    )
    .unwrap();

    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)").unwrap();
    db.execute("CREATE INDEX EMP_JOB ON EMP (JOB)").unwrap();
    db.execute("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)").unwrap();
    db.execute("CREATE UNIQUE INDEX JOB_JOB ON JOB (JOB)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

/// `fig1_db` with EMP clustered on DNO (the bench harness's "fig1c"
/// shape): an order-producing DNO index scan costs NINDX + TCARD pages,
/// so prefix-aware order enforcement has a real alternative to price.
pub fn fig1_clustered_db(n_emp: i64, n_dept: i64, n_job: i64) -> Database {
    let mut db = Database::new();
    db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)").unwrap();
    db.insert_rows(
        "EMP",
        (0..n_emp).map(|i| {
            tuple![
                format!("EMP-{i:06}"),
                scatter(i, n_emp) % n_dept,
                5 + (i % n_job),
                1000.0 + (scatter(i, n_emp) as f64) % 50_000.0
            ]
        }),
    )
    .unwrap();
    db.execute("CREATE CLUSTERED INDEX EMP_DNO ON EMP (DNO)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

/// The paper's §6 EMPLOYEE relation for nested-query tests: employee `i`
/// has number `i`, salary varying non-monotonically, manager `i / span`
/// (so managers repeat — NCARD > ICARD), and department `i % 10`.
pub fn employee_db(n: i64, span: i64) -> Database {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE EMPLOYEE (NAME VARCHAR(20), SALARY FLOAT,
           EMPLOYEE_NUMBER INTEGER, MANAGER INTEGER, DEPARTMENT_NUMBER INTEGER)",
    )
    .unwrap();
    db.execute("CREATE TABLE DEPARTMENT (DEPARTMENT_NUMBER INTEGER, LOCATION VARCHAR(20))")
        .unwrap();
    db.insert_rows(
        "EMPLOYEE",
        (0..n).map(|i| {
            tuple![
                format!("E{i:04}"),
                1000.0 + ((i * 37) % 1000) as f64 * 10.0,
                i,
                (i / span).max(0),
                i % 10
            ]
        }),
    )
    .unwrap();
    db.insert_rows(
        "DEPARTMENT",
        (0..10).map(|d| tuple![d, if d < 3 { "DENVER" } else { "ELSEWHERE" }]),
    )
    .unwrap();
    db.execute("CREATE UNIQUE INDEX EMP_NO ON EMPLOYEE (EMPLOYEE_NUMBER)").unwrap();
    db.execute("UPDATE STATISTICS").unwrap();
    db
}

/// Extract a single integer column from a result set.
pub fn int_column(rows: &[Tuple], col: usize) -> Vec<i64> {
    rows.iter().map(|t| t[col].as_int().expect("integer column")).collect()
}

/// Extract a single string column.
pub fn str_column(rows: &[Tuple], col: usize) -> Vec<String> {
    rows.iter().map(|t| t[col].as_str().expect("string column").to_string()).collect()
}

/// Extract floats.
pub fn float_column(rows: &[Tuple], col: usize) -> Vec<f64> {
    rows.iter()
        .map(|t| match &t[col] {
            Value::Int(i) => *i as f64,
            Value::Float(x) => *x,
            other => panic!("not numeric: {other}"),
        })
        .collect()
}
