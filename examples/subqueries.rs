//! Nested queries (paper §6): scalar subqueries, IN subqueries, and
//! correlation subqueries — including the paper's "employees who earn more
//! than their manager" and the three-level "manager's manager" query.
//!
//! ```sh
//! cargo run --example subqueries
//! ```

use system_r::{tuple, Database, DbError};

fn main() -> Result<(), DbError> {
    let mut db = Database::new();
    db.execute(
        "CREATE TABLE EMPLOYEE (NAME VARCHAR(20), SALARY FLOAT,
           EMPLOYEE_NUMBER INTEGER, MANAGER INTEGER, DEPARTMENT_NUMBER INTEGER)",
    )?;
    db.execute("CREATE TABLE DEPARTMENT (DEPARTMENT_NUMBER INTEGER, LOCATION VARCHAR(20))")?;

    // Ten-person reporting chains: employee i reports to i/10. Salaries
    // vary so some people out-earn their manager.
    db.insert_rows(
        "EMPLOYEE",
        (0..1000i64).map(|i| {
            tuple![
                format!("E{i:04}"),
                20_000.0 + ((i * 37) % 700) as f64 * 100.0,
                i,
                i / 10,
                i % 12
            ]
        }),
    )?;
    db.insert_rows(
        "DEPARTMENT",
        (0..12i64).map(|d| tuple![d, if d < 4 { "DENVER" } else { "SAN JOSE" }]),
    )?;
    db.execute("CREATE UNIQUE INDEX E_NUM ON EMPLOYEE (EMPLOYEE_NUMBER)")?;
    db.execute("UPDATE STATISTICS")?;

    // ---- §6 example 1: uncorrelated scalar subquery -------------------------
    // "evaluated only once ... incorporated into the top level query as
    // though it had been part of the original query statement"
    let q1 = "SELECT NAME FROM EMPLOYEE
              WHERE SALARY > (SELECT AVG(SALARY) FROM EMPLOYEE)";
    let r = db.query(q1)?;
    println!("above-average earners: {}\n", r.len());

    // ---- §6 example 2: IN subquery -------------------------------------------
    let q2 = "SELECT NAME FROM EMPLOYEE WHERE DEPARTMENT_NUMBER IN
                (SELECT DEPARTMENT_NUMBER FROM DEPARTMENT WHERE LOCATION = 'DENVER')";
    let r = db.query(q2)?;
    println!("employees in Denver departments: {}\n", r.len());

    // ---- §6 example 3: correlation subquery ----------------------------------
    // "This selects names of EMPLOYEE's that earn more than their MANAGER."
    let q3 = "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
                (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER)";
    println!("plan for the correlated query:\n{}", db.explain(q3)?);
    db.reset_io_stats();
    let r = db.query(q3)?;
    let io = db.io_stats();
    println!("earn more than their manager: {}", r.len());
    // The §6 optimization: managers repeat (NCARD > ICARD on MANAGER), so
    // the executor memoizes subquery results per referenced value. 1000
    // candidates share only ~100 distinct managers: without the cache the
    // subquery would run 1000 times.
    println!(
        "RSI calls for the whole statement: {} (memoized correlation keeps it ~1 probe per distinct manager)\n",
        io.rsi_calls
    );

    // ---- §6 example 4: three-level nesting ------------------------------------
    let q4 = "SELECT NAME FROM EMPLOYEE X WHERE SALARY >
                (SELECT SALARY FROM EMPLOYEE WHERE EMPLOYEE_NUMBER =
                  (SELECT MANAGER FROM EMPLOYEE WHERE EMPLOYEE_NUMBER = X.MANAGER))";
    let r = db.query(q4)?;
    println!("earn more than their manager's manager: {}", r.len());

    Ok(())
}
