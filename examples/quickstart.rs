//! Quickstart: create tables, load rows, build indexes, and watch the
//! System R optimizer pick access paths.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use system_r::{tuple, Database, DbError};

fn main() -> Result<(), DbError> {
    let mut db = Database::new();

    // ---- schema -----------------------------------------------------------
    db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)")?;
    db.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))")?;

    // ---- data ---------------------------------------------------------------
    // A few departments via plain SQL...
    db.execute(
        "INSERT INTO DEPT VALUES
           (50, 'MFG',   'DENVER'),
           (51, 'BILLING', 'BOSTON'),
           (52, 'ADMIN', 'DENVER')",
    )?;
    // ...and a bulk load for the big table.
    db.insert_rows(
        "EMP",
        (0..5000).map(|i| {
            tuple![format!("EMP-{i:04}"), 50 + (i % 3), i % 8, 8000.0 + (i % 100) as f64 * 250.0]
        }),
    )?;

    // ---- access paths + statistics -----------------------------------------
    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)")?;
    db.execute("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")?;
    db.execute("UPDATE STATISTICS")?;

    // ---- ask the optimizer to explain itself --------------------------------
    let sql = "SELECT NAME, SAL, DNAME
               FROM EMP, DEPT
               WHERE EMP.DNO = DEPT.DNO AND LOC = 'DENVER' AND SAL > 30000
               ORDER BY SAL DESC";
    println!("EXPLAIN {sql}\n");
    println!("{}", db.explain(sql)?);

    // ---- run it, with the measured cost the optimizer tried to predict ------
    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let result = db.query(sql)?;
    println!("{result}");
    let io = db.io_stats();
    println!(
        "measured: {} page fetches + W x {} RSI calls  (the optimizer's cost unit)",
        io.page_fetches(),
        io.rsi_calls
    );

    // ---- aggregation --------------------------------------------------------
    let by_dept = db.query(
        "SELECT DNAME, COUNT(*), AVG(SAL)
         FROM EMP, DEPT WHERE EMP.DNO = DEPT.DNO
         GROUP BY DNAME ORDER BY DNAME",
    )?;
    println!("{by_dept}");
    Ok(())
}
