//! The paper's running example (Figure 1): "Retrieve the name, salary,
//! job title, and department name of employees who are clerks and work
//! for departments in Denver" — EMP ⋈ DEPT ⋈ JOB with the exact indexes
//! the worked example assumes.
//!
//! The example prints the optimizer's chosen plan (compare with the
//! paper's Figures 2-6 walk-through, regenerated in full by the
//! `sysr-bench` binaries) and contrasts it with what happens when the
//! statistics lie.
//!
//! ```sh
//! cargo run --example payroll
//! ```

use system_r::{tuple, Database, DbError};

const FIG1: &str = "SELECT NAME, TITLE, SAL, DNAME
     FROM EMP, DEPT, JOB
     WHERE TITLE = 'CLERK'
       AND LOC = 'DENVER'
       AND EMP.DNO = DEPT.DNO
       AND EMP.JOB = JOB.JOB";

fn build(n_emp: i64, n_dept: i64) -> Result<Database, DbError> {
    let mut db = Database::new();
    db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)")?;
    db.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))")?;
    db.execute("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR(20))")?;

    // The paper's JOB table, Fig. 1: 5=CLERK, 6=TYPIST, 9=SALES, 12=MECHANIC.
    db.execute(
        "INSERT INTO JOB VALUES (5, 'CLERK'), (6, 'TYPIST'), (9, 'SALES'), (12, 'MECHANIC')",
    )?;
    let cities = ["DENVER", "SAN JOSE", "TUCSON", "BOSTON"];
    db.insert_rows(
        "DEPT",
        (0..n_dept)
            .map(|d| tuple![d, format!("DEPT-{d:03}"), cities[(d % cities.len() as i64) as usize]]),
    )?;
    let jobs = [5i64, 6, 9, 12];
    db.insert_rows(
        "EMP",
        (0..n_emp).map(|i| {
            tuple![
                format!("EMP-{i:06}"),
                (i * 7919) % n_dept,
                jobs[(i % 4) as usize],
                10_000.0 + (i % 500) as f64 * 60.0
            ]
        }),
    )?;

    // The example's access paths: "an index on DNO, an index on JOB" for
    // EMP; "an index on DNO" for DEPT; "an index on JOB" for JOB.
    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)")?;
    db.execute("CREATE INDEX EMP_JOB ON EMP (JOB)")?;
    db.execute("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")?;
    db.execute("CREATE UNIQUE INDEX JOB_JOB ON JOB (JOB)")?;
    db.execute("UPDATE STATISTICS")?;
    Ok(db)
}

fn main() -> Result<(), DbError> {
    let db = build(10_000, 50)?;

    println!("=== The paper's Figure 1 query ===\n{FIG1}\n");
    println!("=== Chosen plan ===\n{}", db.explain(FIG1)?);

    let plan = db.plan(FIG1)?;
    let s = plan.stats;
    println!("=== Search effort (paper \u{a7}5) ===");
    println!("subsets examined:        {}", s.subsets_examined);
    println!("plans costed:            {}", s.plans_considered);
    println!("solutions kept:          {}", s.plans_kept);
    println!("heuristic skips:         {}  (Cartesian products deferred)", s.heuristic_skips);
    println!("solution storage:        {} bytes (paper: 'a few thousand bytes')", s.solution_bytes);
    println!("optimization time:       {} \u{b5}s\n", s.elapsed_micros);

    db.reset_io_stats();
    db.evict_buffers().unwrap();
    let result = db.query(FIG1)?;
    let io = db.io_stats();
    println!("=== Result: {} clerk rows in Denver ===", result.len());
    for row in result.rows.iter().take(5) {
        println!("  {row}");
    }
    if result.len() > 5 {
        println!("  ... and {} more", result.len() - 5);
    }
    println!(
        "\nmeasured cost: {} page fetches + W x {} RSI calls",
        io.page_fetches(),
        io.rsi_calls
    );

    // What if DEPT had no DNO index? The optimizer falls back gracefully.
    println!("\n=== Same query, no DEPT.DNO index ===");
    let mut db2 = Database::new();
    db2.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)")?;
    db2.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))")?;
    db2.execute("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR(20))")?;
    db2.execute("INSERT INTO JOB VALUES (5, 'CLERK'), (6, 'TYPIST')")?;
    db2.insert_rows(
        "DEPT",
        (0..50)
            .map(|d| tuple![d, format!("D{d}"), if d % 4 == 0 { "DENVER" } else { "ELSEWHERE" }]),
    )?;
    db2.insert_rows(
        "EMP",
        (0..10_000).map(|i| tuple![format!("E{i}"), i % 50, 5 + (i % 2), 9000.0]),
    )?;
    db2.execute("CREATE INDEX EMP_JOB ON EMP (JOB)")?;
    db2.execute("UPDATE STATISTICS")?;
    println!("{}", db2.explain(FIG1)?);
    Ok(())
}
