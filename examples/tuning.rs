//! Physical-design tuning with the optimizer as your guide: how index
//! choice, clustering, and the W weighting factor change both the chosen
//! plan and the measured cost.
//!
//! ```sh
//! cargo run --example tuning
//! ```

use system_r::{tuple, Config, Database, DbError};

const QUERY: &str = "SELECT PAD FROM ORDERS WHERE REGION = 7";

fn load(db: &mut Database) -> Result<(), DbError> {
    db.execute("CREATE TABLE ORDERS (ID INTEGER, REGION INTEGER, PAD VARCHAR(60))")?;
    db.insert_rows(
        "ORDERS",
        (0..30_000).map(|i| tuple![i, (i * 7919) % 40, format!("order-payload-{i:044}")]),
    )?;
    Ok(())
}

fn measure(db: &Database, sql: &str) -> (u64, u64) {
    db.evict_buffers().unwrap();
    db.reset_io_stats();
    let r = db.query(sql).expect("query runs");
    let io = db.io_stats();
    (io.page_fetches(), r.len() as u64)
}

fn main() -> Result<(), DbError> {
    println!("Query under tuning: {QUERY}\n");

    // ---- no index: segment scan is the only path -----------------------------
    let mut db = Database::new();
    load(&mut db)?;
    db.execute("UPDATE STATISTICS")?;
    println!("--- no index ---");
    println!("{}", db.explain(QUERY)?);
    let (pages, rows) = measure(&db, QUERY);
    println!("measured: {pages} page fetches for {rows} rows\n");

    // ---- non-clustered index: matches, but the rows are scattered ------------
    let mut db = Database::new();
    load(&mut db)?;
    db.execute("CREATE INDEX ORD_REGION ON ORDERS (REGION)")?;
    db.execute("UPDATE STATISTICS")?;
    println!("--- non-clustered REGION index ---");
    println!("{}", db.explain(QUERY)?);
    let (pages, _) = measure(&db, QUERY);
    println!("measured: {pages} page fetches\n");

    // ---- clustered index: matches and the rows are adjacent ------------------
    let mut db = Database::new();
    load(&mut db)?;
    db.execute("CREATE CLUSTERED INDEX ORD_REGION ON ORDERS (REGION)")?;
    db.execute("UPDATE STATISTICS")?;
    println!("--- clustered REGION index ---");
    println!("{}", db.explain(QUERY)?);
    let (pages, _) = measure(&db, QUERY);
    println!("measured: {pages} page fetches\n");

    // ---- the W knob -----------------------------------------------------------
    // W prices a tuple retrieval relative to a page fetch. For an ORDER BY
    // the trade is real: a sort reads every tuple twice (scan + temp list),
    // an ordered unclustered index reads each tuple once but fetches far
    // more pages.
    let order_by = "SELECT PAD FROM ORDERS ORDER BY ID";
    let mut db = Database::with_config(Config { w: 0.0, buffer_pages: 16, ..Config::default() });
    load(&mut db)?;
    db.execute("CREATE UNIQUE INDEX ORD_ID ON ORDERS (ID)")?;
    db.execute("UPDATE STATISTICS")?;
    println!("--- W = 0 (I/O only): {order_by} ---");
    println!("{}", db.explain(order_by)?);
    db.set_config(Config { w: 3.0, buffer_pages: 16, ..Config::default() }).unwrap();
    println!("--- W = 3 (CPU-heavy): same query ---");
    println!("{}", db.explain(order_by)?);

    Ok(())
}
