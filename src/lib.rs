//! # system-r — a reproduction of the System R access path selector
//!
//! This crate is the user-facing facade over the reproduction of
//! *Selinger et al., "Access Path Selection in a Relational Database
//! Management System", SIGMOD 1979*: a [`Database`] that runs SQL through
//! the paper's four phases — parsing (`sysr-sql`), optimization
//! (`sysr-core`, the paper's contribution), and execution
//! (`sysr-executor`) against a from-scratch storage system (`sysr-rss`)
//! with System R's catalogs and statistics (`sysr-catalog`).
//!
//! ```
//! use system_r::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, SAL FLOAT)").unwrap();
//! db.execute("INSERT INTO EMP VALUES ('SMITH', 50, 10000.0), ('JONES', 50, 20000.0)").unwrap();
//! db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)").unwrap();
//! db.execute("UPDATE STATISTICS").unwrap();
//! let result = db.execute("SELECT NAME FROM EMP WHERE DNO = 50 ORDER BY NAME").unwrap();
//! assert_eq!(result.len(), 2);
//! println!("{}", db.explain("SELECT NAME FROM EMP WHERE DNO = 50").unwrap());
//! ```
//!
//! The cost model's knobs are exposed: the CPU weighting factor `W`, the
//! buffer pool size, and the two search heuristics (interesting orders,
//! Cartesian deferral) — the experiment harness sweeps all of them.
//!
//! ## Concurrent serving
//!
//! [`Database`] is `Send + Sync`: the read/plan/execute path takes
//! `&self` end to end, backed by the sharded buffer pool and latched
//! page backend in `sysr-rss` and the striped [`VersionedCache`] of
//! statement plans here (DESIGN.md §11 documents the latch order). Hand
//! each thread a [`Session`] via [`Database::session`] for per-session
//! cache accounting:
//!
//! ```
//! use system_r::Database;
//!
//! let mut db = Database::new();
//! db.execute("CREATE TABLE T (A INTEGER)").unwrap();
//! db.execute("INSERT INTO T VALUES (1), (2), (3)").unwrap();
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let session = db.session();
//!         s.spawn(move || {
//!             let r = session.query("SELECT A FROM T WHERE A >= 2").unwrap();
//!             assert_eq!(r.len(), 2);
//!         });
//!     }
//! });
//! ```
//!
//! Mutations (`execute`, `insert_rows`, DDL, …) take `&mut self` and are
//! therefore serialized by the borrow checker — this reproduction has no
//! lock manager; concurrency control above the latch level is the
//! paper's companion work (Gray et al.), not Selinger et al.
//! [`Database::save`] and [`Database::sync`] are `&self` and safe to run
//! against concurrent readers: the buffer pool's write-back gate
//! guarantees every page that was dirty when the flush began has reached
//! the page backend before the snapshot is copied or the files are
//! fsynced (see the `sysr-rss` sharded-pool docs).

use std::cell::Cell;
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use sysr_catalog::{Catalog, CatalogError, ColumnMeta, RelId};
use sysr_core::{bind_select, BindError, NodeMeasurement, Optimizer, OptimizerConfig, QueryPlan};
use sysr_executor::{execute, ExecEnv, ExecError, ResultSet};
use sysr_rss::{IoStats, Rid, RssError, Storage, Tuple, Value};
use sysr_sql::{
    parse_statement, parse_statements, DeleteStmt, Expr, InsertStmt, ParseError, SelectList,
    SelectStmt, Statement, TableRef,
};

pub mod plancache;

pub use plancache::{VersionedCache, PLAN_CACHE_CAP};
pub use sysr_audit as audit;
pub use sysr_catalog as catalog;
pub use sysr_core as core;
pub use sysr_executor as executor;
pub use sysr_rss as rss;
pub use sysr_sql as sql;

pub use sysr_core::OptimizerConfig as Config;
pub use sysr_rss::{tuple, ColType};

/// Any error a statement can raise, across all phases.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    Parse(ParseError),
    Bind(BindError),
    Catalog(CatalogError),
    Storage(RssError),
    Exec(ExecError),
    Unsupported(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Bind(e) => write!(f, "{e}"),
            DbError::Catalog(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}
impl From<BindError> for DbError {
    fn from(e: BindError) -> Self {
        DbError::Bind(e)
    }
}
impl From<CatalogError> for DbError {
    fn from(e: CatalogError) -> Self {
        DbError::Catalog(e)
    }
}
impl From<RssError> for DbError {
    fn from(e: RssError) -> Self {
        DbError::Storage(e)
    }
}
impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

pub type DbResult<T> = Result<T, DbError>;

/// Statement plan cache: keyed by the statement's canonical (parsed)
/// form, so formatting differences still hit; entries carry the catalog
/// version they were planned under and are discarded lazily when DDL or
/// `UPDATE STATISTICS` bumps it. Config changes clear the cache eagerly
/// (see [`Database::set_config`]), and `\open` builds a fresh
/// `Database`, so reopened databases always re-optimize.
type PlanCache = VersionedCache<QueryPlan>;

/// An embedded System R-style database: storage, catalogs, optimizer,
/// executor.
pub struct Database {
    storage: Storage,
    catalog: Catalog,
    config: OptimizerConfig,
    /// When set, new tables share this segment (the paper's interleaved
    /// layout, giving `P(T) < 1`); otherwise each table gets its own.
    shared_segment: Option<u32>,
    /// Plans for previously optimized statements; concurrent, so
    /// planning stays `&self` and sessions share warmed plans.
    plan_cache: PlanCache,
}

/// `Database` is shared across session threads by reference; this
/// assertion keeps every field honest about it.
#[allow(dead_code)]
fn assert_database_is_shareable() {
    fn check<T: Send + Sync>() {}
    check::<Database>();
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A database with the default buffer pool (matching the optimizer's
    /// default buffer assumption) and default cost-model parameters.
    pub fn new() -> Self {
        let config = OptimizerConfig::default();
        Database {
            storage: Storage::new(config.buffer_pages),
            catalog: Catalog::new(),
            config,
            shared_segment: None,
            plan_cache: PlanCache::new(),
        }
    }

    /// A database with explicit optimizer configuration; the buffer pool is
    /// sized to `config.buffer_pages` so predictions and measurements see
    /// the same buffer.
    pub fn with_config(config: OptimizerConfig) -> Self {
        Database {
            storage: Storage::new(config.buffer_pages),
            catalog: Catalog::new(),
            config,
            shared_segment: None,
            plan_cache: PlanCache::new(),
        }
    }

    /// Make subsequently created tables share one segment, interleaving
    /// their tuples on common pages (exercises the `P(T)` statistic).
    pub fn share_segment_for_new_tables(&mut self) {
        if self.shared_segment.is_none() {
            self.shared_segment = Some(self.storage.create_segment());
        }
    }

    /// Give subsequently created tables their own segments again.
    pub fn separate_segments_for_new_tables(&mut self) {
        self.shared_segment = None;
    }

    pub fn config(&self) -> OptimizerConfig {
        self.config
    }

    /// Change the optimizer configuration, resizing the buffer pool to
    /// match. Shrinking writes dirty frames back before evicting, so this
    /// can fail on a storage error.
    pub fn set_config(&mut self, config: OptimizerConfig) -> DbResult<()> {
        self.config = config;
        // Every cached plan was chosen under the old knobs; drop them all
        // (counters survive — they describe the session, not the cache).
        self.plan_cache.clear_entries();
        self.storage.set_buffer_capacity(config.buffer_pages)?;
        Ok(())
    }

    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Execution-time I/O counters since the last reset.
    pub fn io_stats(&self) -> IoStats {
        self.storage.io_stats()
    }

    pub fn reset_io_stats(&self) {
        self.storage.reset_io_stats();
    }

    /// Evict the buffer pool (without clearing counters), so the next
    /// measured query starts cold. Dirty frames are written back to the
    /// page backend first.
    pub fn evict_buffers(&self) -> DbResult<()> {
        self.storage.evict_all()?;
        Ok(())
    }

    // ---- persistence -------------------------------------------------------

    /// Save the database into a directory: page files for every segment and
    /// index (written through the buffer pool's checksum/LSN stamping) plus
    /// `storage.meta` and `catalog.meta` descriptors. The saved snapshot
    /// reopens with [`Database::open`] with identical query results and
    /// catalog statistics. Safe to call while other threads read: the
    /// pre-copy flush drains in-flight dirty write-backs, so the
    /// snapshot always contains every committed mutation.
    pub fn save(&self, dir: impl AsRef<Path>) -> DbResult<()> {
        let dir = dir.as_ref();
        self.storage.save_to(dir)?;
        let path = dir.join(sysr_catalog::persist::CATALOG_META);
        std::fs::write(&path, sysr_catalog::persist::render(&self.catalog)).map_err(|e| {
            DbError::Storage(RssError::Io(format!("write {}: {e}", path.display())))
        })?;
        Ok(())
    }

    /// Reopen a database saved with [`Database::save`], with default
    /// configuration. Page reads verify each page's checksum; a torn or
    /// corrupted file surfaces as a clean [`DbError::Storage`] error.
    pub fn open(dir: impl AsRef<Path>) -> DbResult<Database> {
        Self::open_with_config(dir, OptimizerConfig::default())
    }

    /// Reopen a saved database with explicit optimizer configuration. The
    /// reopened database reads and writes the page files in `dir` directly
    /// (new tables get their own segments regardless of how the saved
    /// database interleaved them).
    pub fn open_with_config(dir: impl AsRef<Path>, config: OptimizerConfig) -> DbResult<Database> {
        let dir = dir.as_ref();
        let storage = Storage::open(dir, config.buffer_pages)?;
        let path = dir.join(sysr_catalog::persist::CATALOG_META);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| DbError::Storage(RssError::Io(format!("read {}: {e}", path.display()))))?;
        let catalog = sysr_catalog::persist::parse(&text)?;
        Ok(Database {
            storage,
            catalog,
            config,
            shared_segment: None,
            plan_cache: PlanCache::new(),
        })
    }

    /// Flush dirty buffer frames and fsync the page files (no-op for an
    /// in-memory database). Safe to call while other threads read: the
    /// flush drains in-flight dirty write-backs before the fsync, so no
    /// committed page image can be skipped.
    pub fn sync(&self) -> DbResult<()> {
        self.storage.sync()?;
        Ok(())
    }

    /// The directory backing this database, if it was opened from disk.
    pub fn dir(&self) -> Option<std::path::PathBuf> {
        self.storage.dir()
    }

    // ---- statements --------------------------------------------------------

    /// Execute one SQL statement.
    pub fn execute(&mut self, sql_text: &str) -> DbResult<ResultSet> {
        let stmt = parse_statement(sql_text)?;
        self.execute_statement(stmt)
    }

    /// Execute a semicolon-separated script, returning the last statement's
    /// result.
    pub fn execute_script(&mut self, script: &str) -> DbResult<ResultSet> {
        let stmts = parse_statements(script)?;
        let mut last = ResultSet::empty();
        for stmt in stmts {
            last = self.execute_statement(stmt)?;
        }
        Ok(last)
    }

    fn execute_statement(&mut self, stmt: Statement) -> DbResult<ResultSet> {
        match stmt {
            Statement::Select(sel) => self.run_select(&sel),
            Statement::CreateTable(ct) => {
                let segment = match self.shared_segment {
                    Some(s) => s,
                    None => self.storage.create_segment(),
                };
                let columns =
                    ct.columns.iter().map(|(n, t)| ColumnMeta::new(n.as_str(), *t)).collect();
                self.catalog.create_relation(&ct.name, segment, columns)?;
                Ok(ResultSet::empty())
            }
            Statement::CreateIndex(ci) => {
                let (rel_id, segment, key_cols) = {
                    let rel = self.catalog.relation_by_name(&ci.table)?;
                    let key_cols: Vec<usize> = ci
                        .columns
                        .iter()
                        .map(|c| {
                            rel.column_position(c).ok_or_else(|| {
                                DbError::Catalog(CatalogError::UnknownColumn {
                                    relation: rel.name.clone(),
                                    column: c.clone(),
                                })
                            })
                        })
                        .collect::<DbResult<_>>()?;
                    (rel.id, rel.segment, key_cols)
                };
                if ci.clustered {
                    // Physically reorganize so the index really is
                    // clustered, as a System R reorganization utility would.
                    self.storage.cluster_relation(segment, rel_id, &key_cols)?;
                }
                let idx =
                    self.storage.create_index(segment, rel_id, key_cols.clone(), ci.unique)?;
                self.catalog.register_index(
                    idx,
                    &ci.name,
                    rel_id,
                    key_cols,
                    ci.unique,
                    ci.clustered,
                )?;
                // "Initial relation loading and index creation initialize
                // these statistics."
                self.catalog.update_statistics(&self.storage);
                Ok(ResultSet::empty())
            }
            Statement::Insert(ins) => self.run_insert(&ins),
            Statement::Delete(del) => self.run_delete(&del),
            Statement::Update(upd) => self.run_update(&upd),
            Statement::UpdateStatistics => {
                self.catalog.update_statistics(&self.storage);
                Ok(ResultSet::empty())
            }
            Statement::Explain(inner) => {
                let Statement::Select(sel) = *inner else {
                    return Err(DbError::Unsupported("EXPLAIN requires a SELECT".into()));
                };
                let plan = self.plan_select(&sel)?;
                let text = format!(
                    "{}predicted: {} (W={}); QCARD≈{:.1}\n",
                    plan.explain(&self.catalog),
                    plan.predicted,
                    self.config.w,
                    plan.qcard
                );
                Ok(ResultSet::new(vec!["PLAN".into()], vec![Tuple::new(vec![Value::Str(text)])]))
            }
            Statement::ExplainAnalyze(inner) => {
                let Statement::Select(sel) = *inner else {
                    return Err(DbError::Unsupported("EXPLAIN ANALYZE requires a SELECT".into()));
                };
                let plan = self.plan_select(&sel)?;
                let (_, measurements, _) = self.execute_plan_traced(&plan)?;
                let mut text = plan.explain_analyze(&self.catalog, &measurements, self.config.w);
                let (hits, misses) = self.plan_cache_stats();
                text.push_str(&format!("plan cache: {hits} hits, {misses} misses\n"));
                Ok(ResultSet::new(vec!["PLAN".into()], vec![Tuple::new(vec![Value::Str(text)])]))
            }
        }
    }

    /// Plan a SELECT without executing it.
    pub fn plan(&self, sql_text: &str) -> DbResult<QueryPlan> {
        let stmt = parse_statement(sql_text)?;
        match stmt {
            Statement::Select(sel) => self.plan_select(&sel),
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => match *inner {
                Statement::Select(sel) => self.plan_select(&sel),
                _ => Err(DbError::Unsupported("EXPLAIN requires a SELECT".into())),
            },
            _ => Err(DbError::Unsupported("only SELECT statements have plans".into())),
        }
    }

    /// EXPLAIN: render the chosen plan.
    pub fn explain(&self, sql_text: &str) -> DbResult<String> {
        let plan = self.plan(sql_text)?;
        Ok(format!(
            "{}predicted: {} (W={}); QCARD≈{:.1}\n",
            plan.explain(&self.catalog),
            plan.predicted,
            self.config.w,
            plan.qcard
        ))
    }

    /// Run a read-only SELECT.
    pub fn query(&self, sql_text: &str) -> DbResult<ResultSet> {
        let stmt = parse_statement(sql_text)?;
        match stmt {
            Statement::Select(sel) => self.run_select(&sel),
            _ => Err(DbError::Unsupported("query() only accepts SELECT".into())),
        }
    }

    /// Execute an already-planned SELECT (the §7 experiments execute every
    /// enumerated plan this way).
    pub fn execute_plan(&self, plan: &QueryPlan) -> DbResult<ResultSet> {
        let env = ExecEnv::new(&self.storage, &self.catalog);
        Ok(execute(&env, plan)?)
    }

    /// Execute a plan with per-node measurement: returns the result set,
    /// the measurements keyed by pre-order node id (see
    /// `sysr_core::analyze`), and the whole-query [`IoStats`] delta. The
    /// per-node I/O sums to the delta exactly.
    pub fn execute_plan_traced(
        &self,
        plan: &QueryPlan,
    ) -> DbResult<(ResultSet, HashMap<usize, NodeMeasurement>, IoStats)> {
        let mut env = ExecEnv::with_tracer(&self.storage, &self.catalog);
        let start = self.storage.io_stats();
        let result = execute(&env, plan)?;
        let delta = self.storage.io_stats().since(&start);
        let measurements = env.take_measurements();
        Ok((result, measurements, delta))
    }

    /// `EXPLAIN ANALYZE`: run the query and render the per-node
    /// predicted-vs-measured report.
    pub fn explain_analyze(&self, sql_text: &str) -> DbResult<String> {
        let plan = self.plan(sql_text)?;
        let (_, measurements, _) = self.execute_plan_traced(&plan)?;
        let mut text = plan.explain_analyze(&self.catalog, &measurements, self.config.w);
        let (hits, misses) = self.plan_cache_stats();
        text.push_str(&format!("plan cache: {hits} hits, {misses} misses\n"));
        Ok(text)
    }

    /// Audit a SELECT end to end against the paper-derived invariants
    /// (see `sysr-audit`): optimize with tracing, statically verify the
    /// plan and the search-trace accounting, then execute with per-node
    /// measurement and verify the executor's I/O accounting. Returns the
    /// combined report; `report.ok()` means every check passed.
    pub fn audit(&self, sql_text: &str) -> DbResult<sysr_audit::AuditReport> {
        let stmt = parse_statement(sql_text)?;
        let sel = match stmt {
            Statement::Select(sel) => sel,
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => match *inner {
                Statement::Select(sel) => sel,
                _ => return Err(DbError::Unsupported("audit requires a SELECT".into())),
            },
            _ => return Err(DbError::Unsupported("audit requires a SELECT".into())),
        };
        let optimizer = Optimizer::with_config(&self.catalog, self.config);
        let (plan, traces) = optimizer.optimize_traced(&sel)?;
        let mut report =
            sysr_audit::invariants::audit_query_plan(&self.catalog, &plan, &self.config, "query");
        report.merge(sysr_audit::invariants::audit_traces(&traces, "query"));
        let (_, measurements, delta) = self.execute_plan_traced(&plan)?;
        report.merge(sysr_audit::invariants::audit_measurements(
            &measurements,
            plan.total_nodes(),
            &delta,
            "query",
        ));
        Ok(report)
    }

    /// Render the optimizer's join-order search trace for a SELECT: per
    /// subset level and interesting-order class, the candidates generated,
    /// plans pruned, and surviving cheapest costs — for every query block.
    pub fn search_trace(&self, sql_text: &str) -> DbResult<String> {
        let stmt = parse_statement(sql_text)?;
        let sel = match stmt {
            Statement::Select(sel) => sel,
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => match *inner {
                Statement::Select(sel) => sel,
                _ => return Err(DbError::Unsupported("trace requires a SELECT".into())),
            },
            _ => return Err(DbError::Unsupported("trace requires a SELECT".into())),
        };
        let optimizer = Optimizer::with_config(&self.catalog, self.config);
        let (_, traces) = optimizer.optimize_traced(&sel)?;
        let mut out = String::new();
        for (label, trace) in &traces {
            out.push_str(&format!("== block {label} ==\n{}", trace.render()));
        }
        Ok(out)
    }

    fn plan_select(&self, sel: &SelectStmt) -> DbResult<QueryPlan> {
        Ok(self.plan_select_counted(sel)?.0)
    }

    /// Plan a bound SELECT through the cache; the flag reports whether the
    /// plan was a cache hit (sessions fold it into their own accounting).
    fn plan_select_counted(&self, sel: &SelectStmt) -> DbResult<(QueryPlan, bool)> {
        // The parsed statement's debug form is the normalized cache key:
        // whitespace, case, and formatting differences in the SQL text all
        // collapse to the same AST.
        let key = format!("{sel:?}");
        let version = self.catalog.version();
        if let Some(plan) = self.plan_cache.lookup(&key, version) {
            return Ok((plan, true));
        }
        let optimizer = Optimizer::with_config(&self.catalog, self.config);
        let plan = optimizer.optimize(sel)?;
        self.plan_cache.insert(key, version, plan.clone());
        Ok((plan, false))
    }

    /// Cumulative statement-plan-cache counters `(hits, misses)` for this
    /// database handle. A hit means the statement was answered with a
    /// cached plan; a miss means the optimizer ran. Counting is exact
    /// under concurrency: `hits + misses` equals the number of successful
    /// plan requests across all sessions.
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        self.plan_cache.stats()
    }

    /// Number of plans currently cached (tests and the shell's `\cache`).
    pub fn plan_cache_len(&self) -> usize {
        self.plan_cache.len()
    }

    /// Open a [`Session`]: a lightweight per-thread handle for the
    /// read-only plan/execute path with session-local cache accounting.
    pub fn session(&self) -> Session<'_> {
        Session { db: self, hits: Cell::new(0), misses: Cell::new(0) }
    }

    fn run_select(&self, sel: &SelectStmt) -> DbResult<ResultSet> {
        let plan = self.plan_select(sel)?;
        self.execute_plan(&plan)
    }

    // ---- INSERT -------------------------------------------------------------

    fn run_insert(&mut self, ins: &InsertStmt) -> DbResult<ResultSet> {
        let (rel_id, segment, arity, positions, types) = {
            let rel = self.catalog.relation_by_name(&ins.table)?;
            let positions: Vec<usize> = match &ins.columns {
                None => (0..rel.arity()).collect(),
                Some(cols) => cols
                    .iter()
                    .map(|c| {
                        rel.column_position(c).ok_or_else(|| {
                            DbError::Catalog(CatalogError::UnknownColumn {
                                relation: rel.name.clone(),
                                column: c.clone(),
                            })
                        })
                    })
                    .collect::<DbResult<_>>()?,
            };
            let types: Vec<ColType> = rel.columns.iter().map(|c| c.ty).collect();
            (rel.id, rel.segment, rel.arity(), positions, types)
        };
        let mut inserted = 0usize;
        for row in &ins.rows {
            if row.len() != positions.len() {
                return Err(DbError::Unsupported(format!(
                    "INSERT row has {} values for {} columns",
                    row.len(),
                    positions.len()
                )));
            }
            let mut values = vec![Value::Null; arity];
            for (expr, &pos) in row.iter().zip(&positions) {
                let v = const_eval(expr)?;
                let v = coerce(v, types[pos])?;
                values[pos] = v;
            }
            self.storage.insert(segment, rel_id, &Tuple::new(values))?;
            inserted += 1;
        }
        Ok(ResultSet::new(
            vec!["INSERTED".into()],
            vec![Tuple::new(vec![Value::Int(inserted as i64)])],
        ))
    }

    /// Bulk-load pre-built tuples (examples and benches use this instead of
    /// millions of INSERT statements).
    pub fn insert_rows(
        &mut self,
        table: &str,
        rows: impl IntoIterator<Item = Tuple>,
    ) -> DbResult<usize> {
        let (rel_id, segment, types) = {
            let rel = self.catalog.relation_by_name(table)?;
            let types: Vec<ColType> = rel.columns.iter().map(|c| c.ty).collect();
            (rel.id, rel.segment, types)
        };
        let mut n = 0;
        for row in rows {
            if row.arity() != types.len() {
                return Err(DbError::Unsupported(format!(
                    "row arity {} != table arity {}",
                    row.arity(),
                    types.len()
                )));
            }
            for (v, &ty) in row.values().iter().zip(&types) {
                if !v.fits(ty) {
                    return Err(DbError::Unsupported(format!("value {v} does not fit {ty}")));
                }
            }
            self.storage.insert(segment, rel_id, &row)?;
            n += 1;
        }
        Ok(n)
    }

    // ---- DELETE ---------------------------------------------------------------

    fn run_delete(&mut self, del: &DeleteStmt) -> DbResult<ResultSet> {
        // Retrieval for data manipulation "is treated similarly" (§1):
        // plan the WHERE as a single-table SELECT *, execute it, then
        // remove the matching tuples.
        let sel = SelectStmt {
            distinct: false,
            select: SelectList::Star,
            from: vec![TableRef { table: del.table.clone(), alias: None }],
            where_clause: del.where_clause.clone(),
            group_by: vec![],
            order_by: vec![],
        };
        let bound = bind_select(&self.catalog, &sel)?;
        let optimizer = Optimizer::with_config(&self.catalog, self.config);
        let plan = optimizer.optimize_bound(&bound);
        let env = ExecEnv::new(&self.storage, &self.catalog);
        let mut multiset = sysr_executor::block::matching_multiset(&env, &plan)?;
        let (rel_id, segment) = {
            let rel = self.catalog.relation_by_name(&del.table)?;
            (rel.id, rel.segment)
        };
        // Map matching tuples back to RIDs (duplicates delete one-for-one).
        let mut rids = Vec::new();
        for (rid, tuple) in self.storage.segment(segment)?.iter_relation(rel_id) {
            let tuple = tuple?;
            if let Some(count) = multiset.get_mut(&tuple) {
                if *count > 0 {
                    *count -= 1;
                    rids.push(rid);
                }
            }
        }
        for rid in &rids {
            self.storage.delete(segment, rel_id, *rid)?;
        }
        Ok(ResultSet::new(
            vec!["DELETED".into()],
            vec![Tuple::new(vec![Value::Int(rids.len() as i64)])],
        ))
    }

    // ---- UPDATE ---------------------------------------------------------------

    /// `UPDATE t SET c = expr, ... [WHERE ...]`: "Retrieval for data
    /// manipulation (UPDATE, DELETE) is treated similarly" (§1). The WHERE
    /// and the assignment expressions run through the full
    /// parse→optimize→execute pipeline as a SELECT of the old row plus the
    /// new values; the matching tuples are then replaced.
    fn run_update(&mut self, upd: &sysr_sql::UpdateStmt) -> DbResult<ResultSet> {
        let (rel_id, segment, arity, types, positions, col_names) = {
            let rel = self.catalog.relation_by_name(&upd.table)?;
            let positions: Vec<usize> = upd
                .assignments
                .iter()
                .map(|(c, _)| {
                    rel.column_position(c).ok_or_else(|| {
                        DbError::Catalog(CatalogError::UnknownColumn {
                            relation: rel.name.clone(),
                            column: c.clone(),
                        })
                    })
                })
                .collect::<DbResult<_>>()?;
            let types: Vec<ColType> = rel.columns.iter().map(|c| c.ty).collect();
            let names: Vec<String> = rel.columns.iter().map(|c| c.name.clone()).collect();
            (rel.id, rel.segment, rel.arity(), types, positions, names)
        };
        // SELECT <all columns>, <assignment exprs> FROM t WHERE ...
        let mut items: Vec<sysr_sql::SelectItem> = col_names
            .iter()
            .map(|n| sysr_sql::SelectItem {
                expr: Expr::Column(sysr_sql::ColumnRef::unqualified(n.as_str())),
                alias: None,
            })
            .collect();
        for (_, e) in &upd.assignments {
            items.push(sysr_sql::SelectItem { expr: e.clone(), alias: None });
        }
        let sel = SelectStmt {
            distinct: false,
            select: SelectList::Items(items),
            from: vec![TableRef { table: upd.table.clone(), alias: None }],
            where_clause: upd.where_clause.clone(),
            group_by: vec![],
            order_by: vec![],
        };
        let bound = bind_select(&self.catalog, &sel)?;
        let optimizer = Optimizer::with_config(&self.catalog, self.config);
        let plan = optimizer.optimize_bound(&bound);
        let env = ExecEnv::new(&self.storage, &self.catalog);
        let rows = sysr_executor::execute_block(&env, &plan, Vec::new())?;

        // Replace matching tuples one-for-one, evaluating all assignments
        // against the *old* row values (already materialized above).
        let mut old_multiset: std::collections::HashMap<Tuple, Vec<Tuple>> =
            std::collections::HashMap::new();
        for row in rows {
            let values = row.into_values();
            let old = Tuple::new(values[..arity].to_vec());
            let mut new_values = old.values().to_vec();
            for (i, &pos) in positions.iter().enumerate() {
                new_values[pos] = coerce(values[arity + i].clone(), types[pos])?;
            }
            old_multiset.entry(old).or_default().push(Tuple::new(new_values));
        }
        let mut victims: Vec<(Rid, Tuple)> = Vec::new();
        for (rid, tuple) in self.storage.segment(segment)?.iter_relation(rel_id) {
            let tuple = tuple?;
            if let Some(news) = old_multiset.get_mut(&tuple) {
                if let Some(new) = news.pop() {
                    victims.push((rid, new));
                }
            }
        }
        for (rid, _) in &victims {
            self.storage.delete(segment, rel_id, *rid)?;
        }
        let updated = victims.len();
        for (_, new) in victims {
            self.storage.insert(segment, rel_id, &new)?;
        }
        Ok(ResultSet::new(
            vec!["UPDATED".into()],
            vec![Tuple::new(vec![Value::Int(updated as i64)])],
        ))
    }

    /// Relation id lookup helper for tests and experiment harnesses.
    pub fn relation_id(&self, table: &str) -> DbResult<RelId> {
        Ok(self.catalog.relation_by_name(table)?.id)
    }
}

/// A per-thread handle on a shared [`Database`] for the read-only
/// plan/execute path.
///
/// Sessions borrow the database immutably, so any number may run
/// concurrently (`std::thread::scope` pairs naturally with the borrow).
/// Mutable session state — the per-session view of plan-cache traffic,
/// and the `EXPLAIN ANALYZE` tracer allocated per call — lives here, not
/// in the shared `Database`, which is why `Session` is deliberately
/// `!Sync`: each thread opens its own.
pub struct Session<'db> {
    db: &'db Database,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl<'db> Session<'db> {
    /// The shared database this session serves from.
    pub fn database(&self) -> &'db Database {
        self.db
    }

    fn select_of(sql_text: &str) -> DbResult<SelectStmt> {
        match parse_statement(sql_text)? {
            Statement::Select(sel) => Ok(sel),
            Statement::Explain(inner) | Statement::ExplainAnalyze(inner) => match *inner {
                Statement::Select(sel) => Ok(sel),
                _ => Err(DbError::Unsupported("EXPLAIN requires a SELECT".into())),
            },
            _ => Err(DbError::Unsupported("sessions serve SELECT statements".into())),
        }
    }

    fn plan_counted(&self, sel: &SelectStmt) -> DbResult<QueryPlan> {
        let (plan, hit) = self.db.plan_select_counted(sel)?;
        let counter = if hit { &self.hits } else { &self.misses };
        counter.set(counter.get() + 1);
        Ok(plan)
    }

    /// Plan a SELECT without executing it (through the shared cache).
    pub fn plan(&self, sql_text: &str) -> DbResult<QueryPlan> {
        self.plan_counted(&Self::select_of(sql_text)?)
    }

    /// Run a read-only SELECT.
    pub fn query(&self, sql_text: &str) -> DbResult<ResultSet> {
        let plan = self.plan_counted(&Self::select_of(sql_text)?)?;
        self.db.execute_plan(&plan)
    }

    /// EXPLAIN: render the chosen plan.
    pub fn explain(&self, sql_text: &str) -> DbResult<String> {
        let plan = self.plan_counted(&Self::select_of(sql_text)?)?;
        Ok(format!(
            "{}predicted: {} (W={}); QCARD≈{:.1}\n",
            plan.explain(&self.db.catalog),
            plan.predicted,
            self.db.config.w,
            plan.qcard
        ))
    }

    /// `EXPLAIN ANALYZE`: run the query and render the per-node
    /// predicted-vs-measured report, with this session's cache traffic.
    pub fn explain_analyze(&self, sql_text: &str) -> DbResult<String> {
        let plan = self.plan_counted(&Self::select_of(sql_text)?)?;
        let (_, measurements, _) = self.db.execute_plan_traced(&plan)?;
        let mut text = plan.explain_analyze(&self.db.catalog, &measurements, self.db.config.w);
        let (hits, misses) = self.cache_stats();
        text.push_str(&format!("session plan cache: {hits} hits, {misses} misses\n"));
        Ok(text)
    }

    /// Execute an already-planned SELECT.
    pub fn execute_plan(&self, plan: &QueryPlan) -> DbResult<ResultSet> {
        self.db.execute_plan(plan)
    }

    /// This session's own view of plan-cache traffic `(hits, misses)` —
    /// only statements planned through this handle, unlike the
    /// database-wide [`Database::plan_cache_stats`].
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

/// Evaluate a constant expression from an INSERT VALUES list.
fn const_eval(expr: &Expr) -> DbResult<Value> {
    match expr {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Neg(inner) => match const_eval(inner)? {
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(DbError::Unsupported(format!("cannot negate {other}"))),
        },
        Expr::Arith { op, left, right } => {
            let l = const_eval(left)?;
            let r = const_eval(right)?;
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(DbError::Unsupported("non-numeric arithmetic in VALUES".into()));
            };
            use sysr_sql::ArithOp;
            let x = match op {
                ArithOp::Add => a + b,
                ArithOp::Sub => a - b,
                ArithOp::Mul => a * b,
                ArithOp::Div => {
                    if b == 0.0 {
                        return Err(DbError::Unsupported("division by zero in VALUES".into()));
                    }
                    a / b
                }
            };
            match (l, r) {
                (Value::Int(_), Value::Int(_)) => Ok(Value::Int(x as i64)),
                _ => Ok(Value::Float(x)),
            }
        }
        other => {
            Err(DbError::Unsupported(format!("VALUES entries must be constants, got {other:?}")))
        }
    }
}

/// Coerce an inserted value to the column type (Int → Float only).
fn coerce(v: Value, ty: ColType) -> DbResult<Value> {
    match (&v, ty) {
        (Value::Int(i), ColType::Float) => Ok(Value::Float(*i as f64)),
        _ if v.fits(ty) => Ok(v),
        _ => Err(DbError::Unsupported(format!("value {v} does not fit column type {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quickstart_roundtrip() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))").unwrap();
        db.execute("INSERT INTO T VALUES (1, 'x'), (2, 'y'), (3, 'z')").unwrap();
        let r = db.execute("SELECT B FROM T WHERE A >= 2 ORDER BY A DESC").unwrap();
        assert_eq!(r.rows, vec![tuple!["z"], tuple!["y"]]);
    }

    #[test]
    fn insert_column_list_and_defaults() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10), C FLOAT)").unwrap();
        db.execute("INSERT INTO T (C, A) VALUES (5, 1)").unwrap();
        let r = db.execute("SELECT A, B, C FROM T").unwrap();
        assert_eq!(r.rows, vec![tuple![1i64, Value::Null, 5.0]]);
    }

    #[test]
    fn delete_with_predicate() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER)").unwrap();
        db.execute("INSERT INTO T VALUES (1), (2), (3), (2)").unwrap();
        let r = db.execute("DELETE FROM T WHERE A = 2").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        let r = db.execute("SELECT A FROM T ORDER BY A").unwrap();
        assert_eq!(r.rows, vec![tuple![1], tuple![3]]);
    }

    #[test]
    fn explain_mentions_plan_shape() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER)").unwrap();
        db.insert_rows("T", (0..2000).map(|i| tuple![i])).unwrap();
        db.execute("CREATE UNIQUE INDEX T_A ON T (A)").unwrap();
        let text = db.explain("SELECT A FROM T WHERE A = 1").unwrap();
        assert!(text.contains("INDEX SCAN"), "{text}");
        assert!(text.contains("predicted"), "{text}");
        // A tiny table goes the other way: the whole relation is one page,
        // cheaper than the 1+1+W unique probe.
        let mut tiny = Database::new();
        tiny.execute("CREATE TABLE S (A INTEGER)").unwrap();
        tiny.execute("INSERT INTO S VALUES (1)").unwrap();
        tiny.execute("CREATE UNIQUE INDEX S_A ON S (A)").unwrap();
        let text = tiny.explain("SELECT A FROM S WHERE A = 1").unwrap();
        assert!(text.contains("SEGMENT SCAN"), "{text}");
    }

    #[test]
    fn errors_surface_by_phase() {
        let mut db = Database::new();
        assert!(matches!(db.execute("SELEC"), Err(DbError::Parse(_))));
        assert!(matches!(db.execute("SELECT X FROM NOPE"), Err(DbError::Bind(_))));
        db.execute("CREATE TABLE T (A INTEGER)").unwrap();
        assert!(matches!(db.execute("CREATE TABLE T (A INTEGER)"), Err(DbError::Catalog(_))));
        assert!(matches!(
            db.execute("INSERT INTO T VALUES ('nope')"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn save_and_open_roundtrip_via_sql() {
        let dir = std::env::temp_dir().join(format!("sysr-facade-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER, B VARCHAR(10))").unwrap();
        db.insert_rows("T", (0..500).map(|i| tuple![i, format!("v{i}")])).unwrap();
        db.execute("CREATE UNIQUE INDEX T_A ON T (A)").unwrap();
        db.execute("UPDATE STATISTICS").unwrap();
        let q = "SELECT B FROM T WHERE A >= 490 ORDER BY A";
        let before = db.execute(q).unwrap();
        db.save(&dir).unwrap();
        drop(db);

        let mut back = Database::open(&dir).unwrap();
        assert_eq!(back.execute(q).unwrap().rows, before.rows);
        let rel = back.catalog().relation_by_name("T").unwrap();
        assert!(rel.stats.valid, "statistics survive reopen");
        assert_eq!(rel.stats.ncard, 500);
        // The reopened database accepts new writes and enforces the index.
        back.execute("INSERT INTO T VALUES (1000, 'new')").unwrap();
        assert!(back.execute("INSERT INTO T VALUES (1000, 'dup')").is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unique_index_enforced_through_sql() {
        let mut db = Database::new();
        db.execute("CREATE TABLE T (A INTEGER)").unwrap();
        db.execute("CREATE UNIQUE INDEX T_A ON T (A)").unwrap();
        db.execute("INSERT INTO T VALUES (1)").unwrap();
        assert!(matches!(db.execute("INSERT INTO T VALUES (1)"), Err(DbError::Storage(_))));
    }
}
