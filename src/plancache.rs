//! Re-export shim: the statement plan cache moved to
//! [`sysr_rss::plancache`] so `sysr-audit --model` can drive it through
//! the `sync` facade without a dependency cycle (the audit crate cannot
//! depend on this root crate). The public paths
//! `system_r::VersionedCache` and `system_r::PLAN_CACHE_CAP` are
//! unchanged; see the moved module for the design and invariants.

pub use sysr_rss::plancache::{VersionedCache, PLAN_CACHE_CAP};
