//! `sysr` — an interactive shell for the System R reproduction.
//!
//! ```sh
//! cargo run --release --bin sysr
//! ```
//!
//! Statements end with `;` and may span lines. Backslash commands:
//!
//! * `\stats`   — I/O counters since the last `\reset`
//! * `\reset`   — zero the I/O counters
//! * `\evict`   — drop all buffered pages (next query runs cold)
//! * `\save <dir>` — save the database (page files + catalogs) to a directory
//! * `\open <dir>` — open a database previously saved with `\save`
//! * `\tables`  — list relations with their statistics
//! * `\cache`   — statement-plan-cache counters and current size
//! * `\w <f>`   — set the CPU weighting factor W
//! * `\threads <n>` — set the optimizer's worker-thread count (plans are
//!   identical at any value; see `OptimizerConfig::threads`)
//! * `\trace <select>` — show the optimizer's join-order search trace
//! * `\audit [select]` — verify the plan invariants (see `sysr-audit`);
//!   with no argument, run the audit over its built-in corpus
//! * `\demo`    — load the paper's Fig. 1 example database
//! * `\q`       — quit
//!
//! Prefix any SELECT with `EXPLAIN` to see the chosen plan and its
//! predicted cost instead of running it, or with `EXPLAIN ANALYZE` to run
//! it and see measured rows and page fetches next to the predictions.

use std::io::{BufRead, Write};
use system_r::{Database, DbError};

fn main() {
    let mut db = Database::new();
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    println!("system-r shell — Selinger et al. (1979) reproduction. \\q to quit, \\demo for sample data.");
    prompt(buffer.is_empty());
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with('\\') {
            if !command(&mut db, trimmed) {
                return;
            }
            prompt(true);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if trimmed.ends_with(';') {
            let sql = std::mem::take(&mut buffer);
            run(&mut db, &sql);
        }
        prompt(buffer.is_empty());
    }
}

fn prompt(fresh: bool) {
    print!("{}", if fresh { "sysr> " } else { "  ... " });
    let _ = std::io::stdout().flush();
}

fn run(db: &mut Database, sql: &str) {
    let started = std::time::Instant::now();
    match db.execute_script(sql) {
        Ok(result) => {
            // EXPLAIN results carry the plan as a single text cell.
            if result.columns == ["PLAN"] {
                if let Some(row) = result.rows.first() {
                    println!("{}", row[0].as_str().unwrap_or(""));
                }
            } else if result.columns.is_empty() {
                println!("ok ({:.1} ms)", started.elapsed().as_secs_f64() * 1e3);
            } else {
                print!("{result}");
                println!("({:.1} ms)", started.elapsed().as_secs_f64() * 1e3);
            }
        }
        Err(e) => report(e),
    }
}

fn report(e: DbError) {
    eprintln!("error: {e}");
}

/// Handle a backslash command; returns false to quit.
fn command(db: &mut Database, cmd: &str) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        "\\q" | "\\quit" | "\\exit" => return false,
        "\\stats" => {
            let io = db.io_stats();
            println!("{io}");
            println!(
                "weighted cost (W={}): {:.1}",
                db.config().w,
                system_r::core::Cost::from_io(&io).total(db.config().w)
            );
            let (hits, misses) = db.plan_cache_stats();
            println!("plan cache: {hits} hits, {misses} misses, {} cached", db.plan_cache_len());
        }
        "\\cache" => {
            let (hits, misses) = db.plan_cache_stats();
            println!("plan cache: {hits} hits, {misses} misses, {} cached", db.plan_cache_len());
        }
        "\\reset" => {
            db.reset_io_stats();
            println!("counters zeroed");
        }
        "\\evict" => match db.evict_buffers() {
            Ok(()) => println!("buffer pool emptied"),
            Err(e) => report(e),
        },
        "\\save" => match parts.next() {
            Some(dir) => match db.save(dir) {
                Ok(()) => println!("saved to {dir}"),
                Err(e) => report(e),
            },
            None => eprintln!("usage: \\save <directory>"),
        },
        "\\open" => match parts.next() {
            Some(dir) => match Database::open_with_config(dir, db.config()) {
                Ok(opened) => {
                    *db = opened;
                    println!("opened {dir} ({} relations)", db.catalog().relations().len());
                }
                Err(e) => report(e),
            },
            None => eprintln!("usage: \\open <directory>"),
        },
        "\\tables" => {
            for rel in db.catalog().relations() {
                let idx: Vec<String> = db
                    .catalog()
                    .indexes_on(rel.id)
                    .map(|i| {
                        format!(
                            "{}{}{}({})",
                            i.name,
                            if i.unique { " UNIQUE" } else { "" },
                            if i.clustered { " CLUSTERED" } else { "" },
                            i.stats.icard
                        )
                    })
                    .collect();
                println!(
                    "{}: NCARD={} TCARD={} P={:.2} width≈{:.0}B {}",
                    rel.name,
                    rel.stats.ncard,
                    rel.stats.tcard,
                    rel.stats.pfrac,
                    rel.stats.avg_width,
                    if idx.is_empty() { String::new() } else { format!("indexes: {}", idx.join(", ")) }
                );
            }
        }
        "\\w" => match parts.next().and_then(|s| s.parse::<f64>().ok()) {
            Some(w) => {
                let mut cfg = db.config();
                cfg.w = w;
                match db.set_config(cfg) {
                    Ok(()) => println!("W = {w}"),
                    Err(e) => report(e),
                }
            }
            None => eprintln!("usage: \\w <float>"),
        },
        "\\threads" => match parts.next().and_then(|s| s.parse::<usize>().ok()) {
            Some(n) if n >= 1 => {
                let mut cfg = db.config();
                cfg.threads = n;
                match db.set_config(cfg) {
                    Ok(()) => println!("optimizer threads = {n}"),
                    Err(e) => report(e),
                }
            }
            _ => eprintln!("usage: \\threads <n >= 1>"),
        },
        "\\trace" => {
            let sql = cmd["\\trace".len()..].trim().trim_end_matches(';');
            if sql.is_empty() {
                eprintln!("usage: \\trace <select>");
            } else {
                match db.search_trace(sql) {
                    Ok(text) => print!("{text}"),
                    Err(e) => report(e),
                }
            }
        }
        "\\audit" => {
            let sql = cmd["\\audit".len()..].trim().trim_end_matches(';');
            if sql.is_empty() {
                audit_builtin_corpus(db.config());
            } else {
                match db.audit(sql) {
                    Ok(r) => print!("{}", r.render()),
                    Err(e) => report(e),
                }
            }
        }
        "\\demo" => match load_demo(db) {
            Ok(()) => println!("Fig. 1 demo loaded: EMP (10k), DEPT (50), JOB (4); try:\n  EXPLAIN SELECT NAME, TITLE, SAL, DNAME FROM EMP, DEPT, JOB WHERE TITLE='CLERK' AND LOC='DENVER' AND EMP.DNO=DEPT.DNO AND EMP.JOB=JOB.JOB;"),
            Err(e) => report(e),
        },
        other => eprintln!("unknown command {other}; try \\q \\stats \\reset \\evict \\save \\open \\tables \\cache \\w \\threads \\trace \\audit \\demo"),
    }
    true
}

/// `\audit` with no SQL: run the plan auditor and differential oracle
/// over `sysr-audit`'s built-in corpus under the shell's current config.
fn audit_builtin_corpus(config: system_r::Config) {
    use system_r::audit::{corpus, differential, invariants, AuditReport};
    use system_r::core::Optimizer;
    let mut report = AuditReport::default();
    for case in corpus::builtin_cases() {
        match corpus::parse_select(&case.sql) {
            Ok(stmt) => {
                match Optimizer::with_config(&case.catalog, config).optimize_traced(&stmt) {
                    Ok((plan, traces)) => {
                        report.merge(invariants::audit_query_plan(
                            &case.catalog,
                            &plan,
                            &config,
                            &case.label,
                        ));
                        report.merge(invariants::audit_traces(&traces, &case.label));
                    }
                    Err(e) => eprintln!("{}: bind error: {e}", case.label),
                }
            }
            Err(e) => eprintln!("{}: parse error: {e}", case.label),
        }
        report.merge(differential::differential_case(&case, config));
    }
    print!("{}", report.render());
}

fn load_demo(db: &mut Database) -> Result<(), DbError> {
    use system_r::tuple;
    db.execute("CREATE TABLE EMP (NAME VARCHAR(20), DNO INTEGER, JOB INTEGER, SAL FLOAT)")?;
    db.execute("CREATE TABLE DEPT (DNO INTEGER, DNAME VARCHAR(20), LOC VARCHAR(20))")?;
    db.execute("CREATE TABLE JOB (JOB INTEGER, TITLE VARCHAR(20))")?;
    db.execute("INSERT INTO JOB VALUES (5,'CLERK'), (6,'TYPIST'), (9,'SALES'), (12,'MECHANIC')")?;
    let cities = ["DENVER", "SAN JOSE", "TUCSON", "BOSTON"];
    db.insert_rows(
        "DEPT",
        (0..50).map(|d| tuple![d, format!("DEPT-{d:02}"), cities[(d % 4) as usize]]),
    )?;
    let jobs = [5i64, 6, 9, 12];
    db.insert_rows(
        "EMP",
        (0..10_000).map(|i| {
            tuple![
                format!("EMP-{i:05}"),
                (i * 7919) % 50,
                jobs[(i % 4) as usize],
                10_000.0 + (i % 500) as f64 * 50.0
            ]
        }),
    )?;
    db.execute("CREATE INDEX EMP_DNO ON EMP (DNO)")?;
    db.execute("CREATE INDEX EMP_JOB ON EMP (JOB)")?;
    db.execute("CREATE UNIQUE INDEX DEPT_DNO ON DEPT (DNO)")?;
    db.execute("CREATE UNIQUE INDEX JOB_JOB ON JOB (JOB)")?;
    db.execute("UPDATE STATISTICS")?;
    Ok(())
}
